//! The streaming pass engine: one memoryload at a time through memory,
//! with double-buffered I/O overlap.
//!
//! Every algorithm in this workspace — the BMMC one-pass executors, the
//! pass-fusion executor, the BPC baseline chunks, external-sort run
//! formation — reduces to the same inner loop: stream the `N` records
//! through memory one `M`-record *memoryload* at a time, rearrange in
//! RAM, write back. The [`PassEngine`] is that loop, written once:
//!
//! * **reads** come from a [`ReadPlan`] per memoryload — either the
//!   `M/BD` consecutive stripes of a source memoryload (striped reads)
//!   or an arbitrary gather of independent block batches (the MLD⁻¹
//!   discipline), described by the engine-owned [`BlockBatches`]
//!   buffer the `reads` callback fills in place;
//! * the caller's **transform** rearranges the `M` records in memory
//!   (a scratch memoryload buffer is provided for out-of-place
//!   scatters);
//! * **writes** go out per the returned [`WritePlan`] — striped to a
//!   target memoryload, or an independent scatter of block batches
//!   (the MLD discipline), again via an engine-owned [`BlockBatches`].
//!
//! Costs are exactly those of the hand-written loops the engine
//! replaces: each memoryload is read once and written once, so a full
//! pass is `2N/BD` parallel I/Os, with the striped/independent split
//! determined entirely by the plans. [`IoStats`](crate::IoStats) is
//! charged through the ordinary [`DiskSystem`] accounting.
//!
//! # Steady-state allocation freedom
//!
//! All plan storage is owned by the engine and reused across
//! memoryloads and passes: the gather/scatter batch buffers, the
//! striped-plan reference scratch, and the write-ticket list. After
//! the first memoryload of the first pass, the engine's hot loop
//! performs **no heap allocation** in the synchronous service modes
//! (`crates/pdm/tests/engine_alloc.rs` asserts this with a counting
//! global allocator; the threaded mode's channel machinery is exempt).
//!
//! # Overlap
//!
//! In [`ServiceMode::Threaded`] the engine runs split-phase: while the
//! CPU transforms memoryload *k*, the per-disk service threads are
//! already reading memoryload *k+1* and still draining the writes of
//! memoryload *k−1*. Records move through the system's reusable block
//! buffer pool instead of fresh allocations. The overlap is
//! backend-agnostic: on a file-backed system
//! ([`crate::system::Backend::File`]) each worker issues real
//! positional system calls against its disk's file, so the pipeline
//! hides genuine I/O latency rather than simulated copies
//! (`engine_sweep`'s `file` section measures exactly this). In the synchronous service
//! modes the engine degenerates to exactly the classic loop — same
//! operations, same order, same operation numbering for
//! [fault plans](crate::FaultPlan). (With overlap enabled the *set* of
//! operations is identical but reads are issued one memoryload early,
//! so fault-plan operation indices differ from the serial order. On
//! *error* paths one further asymmetry exists in any mode: split-phase
//! writes are charged at submission, so a pass aborted by a backend
//! write failure has charged that operation where the classic loop
//! would not — success-path statistics are always identical.)
//!
//! ```
//! use pdm::{DiskSystem, Geometry};
//! use pdm::engine::{PassEngine, ReadPlan, WritePlan};
//!
//! // Reverse the records of each memoryload, portion 0 → portion 1.
//! let geom = Geometry::new(64, 2, 4, 16).unwrap();
//! let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
//! sys.load_records(0, &(0..64).collect::<Vec<_>>());
//! let mut engine = PassEngine::new(geom);
//! engine
//!     .run_pass(
//!         &mut sys,
//!         |ml, _gather| ReadPlan::Memoryload { portion: 0, ml },
//!         |ml, data, _scratch, _scatter| {
//!             data.reverse();
//!             WritePlan::Memoryload { portion: 1, ml }
//!         },
//!     )
//!     .unwrap();
//! assert_eq!(sys.stats().parallel_ios() as usize, geom.ios_per_pass());
//! assert_eq!(sys.dump_records(1)[..16], (0..16).rev().collect::<Vec<u64>>());
//! ```

use crate::config::Geometry;
use crate::error::Result;
use crate::record::Record;
use crate::system::{BlockRef, DiskSystem, ReadTicket, ServiceMode, WriteTicket};

/// One coalesced span of block references: `len` blocks on `disk` at
/// consecutive slots starting at `slot`, one per consecutive batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Run {
    disk: usize,
    slot: usize,
    len: usize,
}

/// A reusable run-length-encoded sequence of equal-sized
/// block-reference batches.
///
/// Each batch is one parallel I/O of `batch_len` blocks (at most one
/// per disk); batch `k`'s request `j` corresponds to buffer offset
/// `(k·batch_len + j) · B` records. References are still [`push`]ed
/// one at a time in batch-major order, but the storage is per *column*
/// (position-within-batch): column `j` receives exactly one reference
/// per batch, and [`push`] coalesces consecutive batches whose column-
/// `j` references hit the same disk at consecutive slots into one
/// `(disk, first_slot, len)` run. Block-run pass planners (the
/// `bmmc` executors feeding off block-hoisted target evaluation)
/// produce exactly such slot-sequential columns, so a whole
/// memoryload's gather or scatter plan collapses to a handful of
/// spans — carried without allocating in the steady state, preserving
/// the engine's allocation-freedom guarantee.
///
/// Consumers materialise one batch at a time into a caller-owned
/// scratch vector via [`begin`]/[`next_batch_into`] with a reusable
/// [`BatchCursor`], since the coalesced form has no per-batch slices
/// to borrow.
///
/// [`push`]: BlockBatches::push
/// [`begin`]: BlockBatches::begin
/// [`next_batch_into`]: BlockBatches::next_batch_into
#[derive(Clone, Debug, Default)]
pub struct BlockBatches {
    /// `cols[j]` holds the coalesced runs of every batch's position-`j`
    /// reference, in batch order. Inner vectors keep their capacity
    /// across [`BlockBatches::reset`].
    cols: Vec<Vec<Run>>,
    batch_len: usize,
    /// Total references pushed since the last reset.
    count: usize,
}

/// Reusable iteration state for materialising a [`BlockBatches`] plan
/// batch by batch. Owned by the consumer (the [`PassEngine`]) and
/// rewound by [`BlockBatches::begin`], so steady-state iteration
/// allocates nothing once its per-column positions have grown to the
/// batch length.
#[derive(Clone, Debug, Default)]
pub struct BatchCursor {
    /// Next batch index to materialise.
    batch: usize,
    /// Number of batches in the plan being iterated.
    num_batches: usize,
    /// Per-column (run index, offset within run).
    pos: Vec<(usize, usize)>,
}

impl BlockBatches {
    /// Clears the batches and sets the per-batch length for refilling.
    /// Run storage (and its capacity) is retained and reused.
    pub fn reset(&mut self, batch_len: usize) {
        assert!(batch_len > 0, "batches must contain at least one block");
        for col in &mut self.cols {
            col.clear();
        }
        if self.cols.len() < batch_len {
            self.cols.resize_with(batch_len, Vec::new);
        }
        self.batch_len = batch_len;
        self.count = 0;
    }

    /// Appends one block reference to the current tail batch,
    /// extending the column's last run when `r` continues it on the
    /// same disk at the next slot.
    pub fn push(&mut self, r: BlockRef) {
        let col = &mut self.cols[self.count % self.batch_len];
        self.count += 1;
        // A column sees exactly one reference per batch, so its last
        // run always ends at the previous batch — contiguity in batch
        // index is structural and only disk/slot adjacency is checked.
        if let Some(last) = col.last_mut() {
            if last.disk == r.disk && last.slot + last.len == r.slot {
                last.len += 1;
                return;
            }
        }
        col.push(Run {
            disk: r.disk,
            slot: r.slot,
            len: 1,
        });
    }

    /// Blocks per batch (per parallel I/O).
    pub fn batch_len(&self) -> usize {
        self.batch_len
    }

    /// Total block references pushed so far.
    pub fn total_blocks(&self) -> usize {
        self.count
    }

    /// Number of complete batches.
    pub fn num_batches(&self) -> usize {
        self.count.checked_div(self.batch_len).unwrap_or(0)
    }

    /// Number of coalesced runs across all columns — the size of the
    /// plan actually stored; `total_blocks / num_runs` is the mean
    /// span length the planner achieved.
    pub fn num_runs(&self) -> usize {
        self.cols.iter().map(Vec::len).sum()
    }

    /// True if no references have been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Rewinds `cursor` to the first batch of this plan.
    pub fn begin(&self, cursor: &mut BatchCursor) {
        assert!(
            self.batch_len > 0 && self.count.is_multiple_of(self.batch_len),
            "ragged batch set: {} refs with batch length {}",
            self.count,
            self.batch_len
        );
        cursor.batch = 0;
        cursor.num_batches = self.num_batches();
        cursor.pos.clear();
        cursor.pos.resize(self.batch_len, (0, 0));
    }

    /// Materialises the next batch into `out` (cleared first),
    /// advancing `cursor`. Returns `false` when the batches are
    /// exhausted, leaving `out` empty.
    pub fn next_batch_into(&self, cursor: &mut BatchCursor, out: &mut Vec<BlockRef>) -> bool {
        out.clear();
        if cursor.batch >= cursor.num_batches {
            return false;
        }
        for (col, pos) in self.cols[..self.batch_len]
            .iter()
            .zip(cursor.pos.iter_mut())
        {
            let (run_idx, off) = *pos;
            let run = col[run_idx];
            debug_assert!(off < run.len);
            out.push(BlockRef {
                disk: run.disk,
                slot: run.slot + off,
            });
            *pos = if off + 1 == run.len {
                (run_idx + 1, 0)
            } else {
                (run_idx, off + 1)
            };
        }
        cursor.batch += 1;
        true
    }
}

/// Where one memoryload's records come from.
#[derive(Clone, Copy, Debug)]
pub enum ReadPlan {
    /// The `M/BD` consecutive stripes of memoryload `ml` in `portion`,
    /// read with striped parallel I/Os.
    Memoryload {
        /// Source portion.
        portion: usize,
        /// Memoryload index within the portion.
        ml: usize,
    },
    /// Independent block batches, as filled into the engine's
    /// [`BlockBatches`] argument of the `reads` callback. The total
    /// must be exactly `M` records; slots are absolute (include the
    /// portion base).
    Gather,
}

/// Where one memoryload's records go.
#[derive(Clone, Copy, Debug)]
pub enum WritePlan {
    /// Striped writes to memoryload `ml` of `portion`.
    Memoryload {
        /// Target portion.
        portion: usize,
        /// Memoryload index within the portion.
        ml: usize,
    },
    /// Independent block batches, as filled into the engine's
    /// [`BlockBatches`] argument of the `transform` callback. The
    /// total must be exactly `M` records; slots are absolute.
    Scatter,
}

/// The reusable streaming loop. Owns two `M`-record buffers (data and
/// scratch) plus all plan storage (gather/scatter batches, striped
/// reference scratch, ticket lists), so a multi-pass algorithm
/// allocates its working memory once and streams every subsequent
/// memoryload allocation-free.
pub struct PassEngine<R: Record> {
    data: Vec<R>,
    scratch: Vec<R>,
    /// Gather plan storage, refilled by the `reads` callback.
    gather: BlockBatches,
    /// Scatter plan storage, refilled by the `transform` callback.
    scatter: BlockBatches,
    /// Reused block-reference scratch: per-stripe references for
    /// striped plans, and the materialisation target for run-length
    /// gather/scatter batches.
    stripe_refs: Vec<BlockRef>,
    /// Reused iteration state for the run-length batch plans.
    cursor: BatchCursor,
    /// Reused in-flight write tickets (bounded to one memoryload).
    write_tickets: Vec<WriteTicket<R>>,
}

/// The reads for one memoryload, in whichever phase the service mode
/// dictates: split-phase tickets already in flight (Threaded overlap),
/// or a plan to execute directly into the memoryload buffer when its
/// turn comes (synchronous modes — one copy, no staging buffers).
enum PendingLoad<R: Record> {
    /// One ticket per parallel I/O, each tagged with its destination
    /// offset (in records) in the memoryload buffer.
    Tickets(Vec<(usize, ReadTicket<R>)>),
    /// Not yet issued; performed synchronously at collection time. A
    /// deferred [`ReadPlan::Gather`] refers to the engine's gather
    /// batches, which stay untouched until the plan executes.
    Plan(ReadPlan),
}

impl<R: Record> PassEngine<R> {
    /// An engine for the given geometry. The transform sees one
    /// memoryload plus an `M`-record scratch buffer, mirroring the
    /// paper's in-memory rearrangement step. (The scratch buffer and
    /// the overlap-mode staging blocks are simulator conveniences that
    /// never change the charged I/O count; contrast the merge phase of
    /// `extsort`, which stays single-buffered because widening *its*
    /// working set would change the fan-in and hence the pass-count
    /// formula being measured.)
    pub fn new(geom: Geometry) -> Self {
        PassEngine {
            data: vec![R::default(); geom.memory()],
            scratch: vec![R::default(); geom.memory()],
            gather: BlockBatches::default(),
            scatter: BlockBatches::default(),
            stripe_refs: Vec::with_capacity(geom.disks()),
            cursor: BatchCursor::default(),
            write_tickets: Vec::with_capacity(geom.stripes_per_memoryload()),
        }
    }

    /// Streams every memoryload of the system through `transform`.
    ///
    /// `reads(t, gather)` supplies the [`ReadPlan`] for memoryload `t`
    /// (`t` in `0 .. N/M`), filling `gather` in place (after a
    /// [`BlockBatches::reset`]) when it returns [`ReadPlan::Gather`];
    /// `transform(t, data, scratch, scatter)` rearranges the `M`
    /// records (leaving the result in `data`, using `scratch` freely)
    /// and returns the [`WritePlan`], filling `scatter` when it
    /// returns [`WritePlan::Scatter`]. A pass costs exactly `2N/BD`
    /// parallel I/Os.
    ///
    /// Contract for `reads`: it is called exactly once per memoryload,
    /// in increasing order, but — when overlap is active — up to one
    /// memoryload *ahead* of the corresponding `transform` call.
    /// Plan-producing state shared with `transform` must therefore be
    /// kept for two loads (e.g. indexed by `t % 2`).
    ///
    /// Hazard contract: memoryload `t+1`'s read plan must not touch
    /// blocks that the write plans of memoryloads `t` or `t−1` write.
    /// With overlap active those reads are submitted to the per-disk
    /// queues *before* load `t`'s writes, so an overlapping plan would
    /// silently read stale data in [`ServiceMode::Threaded`] while
    /// appearing correct serially. Reading from one portion and
    /// writing to a different one (what every pass in this workspace
    /// does — `execute_pass` asserts `src != dst`) satisfies this by
    /// construction.
    ///
    /// On error, all in-flight split-phase operations are drained and
    /// their buffers returned to the system's pool before the error is
    /// propagated.
    pub fn run_pass<F, G>(
        &mut self,
        sys: &mut DiskSystem<R>,
        mut reads: F,
        mut transform: G,
    ) -> Result<()>
    where
        F: FnMut(usize, &mut BlockBatches) -> ReadPlan,
        G: FnMut(usize, &mut Vec<R>, &mut Vec<R>, &mut BlockBatches) -> WritePlan,
    {
        let mut pending_read: Option<PendingLoad<R>> = None;
        let result = self.run_pass_inner(sys, &mut pending_read, &mut reads, &mut transform);
        if result.is_err() {
            if let Some(PendingLoad::Tickets(tickets)) = pending_read.take() {
                for (_, t) in tickets {
                    sys.discard_read(t);
                }
            }
            for t in self.write_tickets.drain(..) {
                // Transfer errors here are masked by the original
                // error; buffers are reclaimed either way.
                let _ = sys.finish_write(t);
            }
        }
        result
    }

    fn run_pass_inner<F, G>(
        &mut self,
        sys: &mut DiskSystem<R>,
        pending_read: &mut Option<PendingLoad<R>>,
        reads: &mut F,
        transform: &mut G,
    ) -> Result<()>
    where
        F: FnMut(usize, &mut BlockBatches) -> ReadPlan,
        G: FnMut(usize, &mut Vec<R>, &mut Vec<R>, &mut BlockBatches) -> WritePlan,
    {
        let geom = sys.geometry();
        let loads = geom.memoryloads();
        let mem = geom.memory();
        assert!(
            self.data.len() == mem && self.scratch.len() == mem,
            "engine built for a different geometry"
        );
        self.write_tickets.clear();
        // Overlap only pays (and only changes operation ordering) when
        // the service threads can run transfers behind the CPU. In the
        // synchronous modes the engine degenerates to the classic loop:
        // plans execute directly into the memoryload buffer, in the
        // classic operation order.
        let overlap = sys.service_mode() == ServiceMode::Threaded;

        let first = reads(0, &mut self.gather);
        *pending_read = Some(if overlap {
            PendingLoad::Tickets(Self::issue_reads(
                sys,
                &geom,
                first,
                &self.gather,
                &mut self.cursor,
                &mut self.stripe_refs,
            )?)
        } else {
            PendingLoad::Plan(first)
        });
        for t in 0..loads {
            let current = pending_read.take().expect("read pipeline primed");
            Self::collect_reads(
                sys,
                &geom,
                current,
                &self.gather,
                &mut self.cursor,
                &mut self.stripe_refs,
                &mut self.data,
            )?;
            if overlap && t + 1 < loads {
                let plan = reads(t + 1, &mut self.gather);
                *pending_read = Some(PendingLoad::Tickets(Self::issue_reads(
                    sys,
                    &geom,
                    plan,
                    &self.gather,
                    &mut self.cursor,
                    &mut self.stripe_refs,
                )?));
            }
            let wp = transform(t, &mut self.data, &mut self.scratch, &mut self.scatter);
            // Bound the write pipeline to one memoryload: drain the
            // previous load's writes before issuing this load's.
            Self::drain_writes(sys, &mut self.write_tickets)?;
            Self::issue_writes(
                sys,
                &geom,
                wp,
                &self.scatter,
                &self.data,
                &mut self.cursor,
                &mut self.stripe_refs,
                &mut self.write_tickets,
            )?;
            if !overlap && t + 1 < loads {
                // Synchronous modes: keep the classic loop's operation
                // order (write memoryload t, then read t+1).
                Self::drain_writes(sys, &mut self.write_tickets)?;
                *pending_read = Some(PendingLoad::Plan(reads(t + 1, &mut self.gather)));
            }
        }
        Self::drain_writes(sys, &mut self.write_tickets)?;
        Ok(())
    }

    /// Finishes every outstanding write ticket — even after one fails —
    /// so their staging buffers always return to the pool; the first
    /// error is reported.
    fn drain_writes(sys: &mut DiskSystem<R>, pending: &mut Vec<WriteTicket<R>>) -> Result<()> {
        let mut first_err = None;
        for w in pending.drain(..) {
            if let Err(e) = sys.finish_write(w) {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn issue_reads(
        sys: &mut DiskSystem<R>,
        geom: &Geometry,
        plan: ReadPlan,
        gather: &BlockBatches,
        cursor: &mut BatchCursor,
        stripe_refs: &mut Vec<BlockRef>,
    ) -> Result<Vec<(usize, ReadTicket<R>)>> {
        let block = geom.block();
        let mut tickets = Vec::new();
        let issue = |sys: &mut DiskSystem<R>,
                     offset: usize,
                     refs: &[BlockRef],
                     tickets: &mut Vec<(usize, ReadTicket<R>)>|
         -> Result<()> {
            match sys.begin_read(refs) {
                Ok(t) => {
                    tickets.push((offset, t));
                    Ok(())
                }
                Err(e) => {
                    // Abort: reclaim the tickets issued so far.
                    for (_, t) in tickets.drain(..) {
                        sys.discard_read(t);
                    }
                    Err(e)
                }
            }
        };
        match plan {
            ReadPlan::Memoryload { portion, ml } => {
                let spm = geom.stripes_per_memoryload();
                let stripe_len = block * geom.disks();
                let base = sys.portion_base(portion) + ml * spm;
                for s in 0..spm {
                    stripe_refs.clear();
                    stripe_refs.extend((0..geom.disks()).map(|disk| BlockRef {
                        disk,
                        slot: base + s,
                    }));
                    issue(sys, s * stripe_len, stripe_refs, &mut tickets)?;
                }
            }
            ReadPlan::Gather => {
                assert_eq!(
                    gather.total_blocks() * block,
                    geom.memory(),
                    "gather plan must cover exactly one memoryload"
                );
                let mut offset = 0;
                gather.begin(cursor);
                while gather.next_batch_into(cursor, stripe_refs) {
                    issue(sys, offset, stripe_refs, &mut tickets)?;
                    offset += stripe_refs.len() * block;
                }
            }
        }
        Ok(tickets)
    }

    /// Collects one memoryload into `out`: waits out in-flight tickets,
    /// or executes a deferred plan directly (synchronous modes).
    #[allow(clippy::too_many_arguments)]
    fn collect_reads(
        sys: &mut DiskSystem<R>,
        geom: &Geometry,
        load: PendingLoad<R>,
        gather: &BlockBatches,
        cursor: &mut BatchCursor,
        refs_scratch: &mut Vec<BlockRef>,
        out: &mut [R],
    ) -> Result<()> {
        let block = geom.block();
        match load {
            PendingLoad::Tickets(tickets) => {
                let mut first_err = None;
                for (offset, ticket) in tickets {
                    let len = ticket.records(block);
                    let r = sys.finish_read(ticket, &mut out[offset..offset + len]);
                    if let Err(e) = r {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
                match first_err {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
            PendingLoad::Plan(ReadPlan::Memoryload { portion, ml }) => {
                sys.read_memoryload_into(portion, ml, out)
            }
            PendingLoad::Plan(ReadPlan::Gather) => {
                assert_eq!(
                    gather.total_blocks() * block,
                    geom.memory(),
                    "gather plan must cover exactly one memoryload"
                );
                let mut offset = 0;
                gather.begin(cursor);
                while gather.next_batch_into(cursor, refs_scratch) {
                    let len = refs_scratch.len() * block;
                    sys.read_blocks_into(refs_scratch, &mut out[offset..offset + len])?;
                    offset += len;
                }
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_writes(
        sys: &mut DiskSystem<R>,
        geom: &Geometry,
        plan: WritePlan,
        scatter: &BlockBatches,
        data: &[R],
        cursor: &mut BatchCursor,
        stripe_refs: &mut Vec<BlockRef>,
        tickets: &mut Vec<WriteTicket<R>>,
    ) -> Result<()> {
        let block = geom.block();
        debug_assert!(tickets.is_empty(), "previous load's writes not drained");
        let abort = |sys: &mut DiskSystem<R>, tickets: &mut Vec<WriteTicket<R>>, e| {
            for t in tickets.drain(..) {
                let _ = sys.finish_write(t);
            }
            Err(e)
        };
        match plan {
            WritePlan::Memoryload { portion, ml } => {
                let spm = geom.stripes_per_memoryload();
                let stripe_len = block * geom.disks();
                let base = sys.portion_base(portion) + ml * spm;
                for s in 0..spm {
                    stripe_refs.clear();
                    stripe_refs.extend((0..geom.disks()).map(|disk| BlockRef {
                        disk,
                        slot: base + s,
                    }));
                    match sys.begin_write(stripe_refs, &data[s * stripe_len..(s + 1) * stripe_len])
                    {
                        Ok(t) => tickets.push(t),
                        Err(e) => return abort(sys, tickets, e),
                    }
                }
            }
            WritePlan::Scatter => {
                assert_eq!(
                    scatter.total_blocks() * block,
                    geom.memory(),
                    "scatter plan must cover exactly one memoryload"
                );
                let mut offset = 0;
                scatter.begin(cursor);
                while scatter.next_batch_into(cursor, stripe_refs) {
                    let len = stripe_refs.len() * block;
                    match sys.begin_write(stripe_refs, &data[offset..offset + len]) {
                        Ok(t) => tickets.push(t),
                        Err(e) => return abort(sys, tickets, e),
                    }
                    offset += len;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::PdmError;

    fn geom() -> Geometry {
        // N=256, B=2, D=4, M=32: 32 stripes, 8 memoryloads.
        Geometry::new(256, 2, 4, 32).unwrap()
    }

    fn identity_pass(sys: &mut DiskSystem<u64>, engine: &mut PassEngine<u64>) {
        engine
            .run_pass(
                sys,
                |ml, _g| ReadPlan::Memoryload { portion: 0, ml },
                |ml, _data, _scratch, _s| WritePlan::Memoryload { portion: 1, ml },
            )
            .unwrap();
    }

    #[test]
    fn identity_pass_costs_one_pass_every_mode() {
        for mode in [
            ServiceMode::Serial,
            ServiceMode::SpawnPerOp,
            ServiceMode::Threaded,
        ] {
            let g = geom();
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
            sys.set_service_mode(mode);
            let input: Vec<u64> = (0..256).collect();
            sys.load_records(0, &input);
            let mut engine = PassEngine::new(g);
            identity_pass(&mut sys, &mut engine);
            assert_eq!(sys.dump_records(1), input, "mode {mode:?}");
            let s = sys.stats();
            assert_eq!(s.parallel_ios() as usize, g.ios_per_pass());
            assert_eq!(s.striped_reads, s.parallel_reads);
            assert_eq!(s.striped_writes, s.parallel_writes);
            assert_eq!(sys.buffer_pool_stats().outstanding, 0);
        }
    }

    #[test]
    fn transform_and_scratch_swap() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        sys.load_records(0, &(0..256).collect::<Vec<_>>());
        let mut engine = PassEngine::new(g);
        engine
            .run_pass(
                &mut sys,
                |ml, _g| ReadPlan::Memoryload { portion: 0, ml },
                |ml, data, scratch, _s| {
                    // Out-of-place reversal via scratch, then swap.
                    for (i, &r) in data.iter().enumerate() {
                        scratch[data.len() - 1 - i] = r;
                    }
                    std::mem::swap(data, scratch);
                    WritePlan::Memoryload { portion: 1, ml }
                },
            )
            .unwrap();
        let out = sys.dump_records(1);
        let mem = g.memory();
        for ml in 0..g.memoryloads() {
            let chunk = &out[ml * mem..(ml + 1) * mem];
            let expect: Vec<u64> = ((ml * mem) as u64..((ml + 1) * mem) as u64).rev().collect();
            assert_eq!(chunk, &expect[..]);
        }
    }

    #[test]
    fn gather_and_scatter_plans_round_trip() {
        // Gather reads the memoryload's stripes as explicit independent
        // batches (same blocks, so the data round-trips), scatter
        // writes them back likewise; both are classified independent
        // only when not all slots align — here they do align, so this
        // checks plan bookkeeping rather than classification.
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let input: Vec<u64> = (0..256).map(|i| i * 3).collect();
        sys.load_records(0, &input);
        let spm = g.stripes_per_memoryload();
        let dst_base = sys.portion_base(1);
        let mut engine = PassEngine::new(g);
        engine
            .run_pass(
                &mut sys,
                |ml, gather| {
                    gather.reset(g.disks());
                    for s in 0..spm {
                        for disk in 0..g.disks() {
                            gather.push(BlockRef {
                                disk,
                                slot: ml * spm + s,
                            });
                        }
                    }
                    ReadPlan::Gather
                },
                |ml, _data, _scratch, scatter| {
                    scatter.reset(g.disks());
                    for s in 0..spm {
                        for disk in 0..g.disks() {
                            scatter.push(BlockRef {
                                disk,
                                slot: dst_base + ml * spm + s,
                            });
                        }
                    }
                    WritePlan::Scatter
                },
            )
            .unwrap();
        assert_eq!(sys.dump_records(1), input);
        assert_eq!(sys.stats().parallel_ios() as usize, g.ios_per_pass());
    }

    #[test]
    fn threaded_overlap_matches_serial_stats_and_output() {
        let g = geom();
        let input: Vec<u64> = (0..256u64).map(|i| i.wrapping_mul(17)).collect();
        let run = |mode: ServiceMode| {
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
            sys.set_service_mode(mode);
            sys.load_records(0, &input);
            let mut engine = PassEngine::new(g);
            engine
                .run_pass(
                    &mut sys,
                    |ml, _g| ReadPlan::Memoryload { portion: 0, ml },
                    |ml, data, _, _| {
                        data.rotate_left(3);
                        WritePlan::Memoryload {
                            portion: 1,
                            ml: (ml + 1) % g.memoryloads(),
                        }
                    },
                )
                .unwrap();
            (sys.stats(), sys.dump_records(1))
        };
        let (serial_stats, serial_out) = run(ServiceMode::Serial);
        let (threaded_stats, threaded_out) = run(ServiceMode::Threaded);
        assert_eq!(serial_stats, threaded_stats);
        assert_eq!(serial_out, threaded_out);
    }

    #[test]
    fn fault_aborts_cleanly_without_stranding_buffers() {
        for mode in [ServiceMode::Serial, ServiceMode::Threaded] {
            let g = geom();
            let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
            sys.set_service_mode(mode);
            sys.load_records(0, &(0..256).collect::<Vec<_>>());
            // Fault somewhere in the middle of the pass.
            sys.set_faults(FaultPlan::new().fail_at(7, 1));
            let mut engine = PassEngine::new(g);
            let err = engine
                .run_pass(
                    &mut sys,
                    |ml, _g| ReadPlan::Memoryload { portion: 0, ml },
                    |ml, _, _, _| WritePlan::Memoryload { portion: 1, ml },
                )
                .unwrap_err();
            assert!(matches!(err, PdmError::Fault { .. }), "mode {mode:?}");
            assert_eq!(
                sys.buffer_pool_stats().outstanding,
                0,
                "engine abort stranded pooled buffers in mode {mode:?}"
            );
        }
    }

    #[test]
    fn engine_reuse_across_passes() {
        let g = geom();
        let mut sys: DiskSystem<u64> = DiskSystem::new_mem(g, 2);
        let input: Vec<u64> = (0..256).collect();
        sys.load_records(0, &input);
        let mut engine = PassEngine::new(g);
        identity_pass(&mut sys, &mut engine);
        // Second pass back into portion 0, reusing the same buffers.
        engine
            .run_pass(
                &mut sys,
                |ml, _g| ReadPlan::Memoryload { portion: 1, ml },
                |ml, _d, _s, _b| WritePlan::Memoryload { portion: 0, ml },
            )
            .unwrap();
        assert_eq!(sys.dump_records(0), input);
        assert_eq!(sys.stats().parallel_ios() as usize, 2 * g.ios_per_pass());
    }

    #[test]
    fn block_batches_bookkeeping() {
        let mut b = BlockBatches::default();
        b.reset(2);
        for slot in 0..4 {
            b.push(BlockRef { disk: 0, slot });
            b.push(BlockRef { disk: 1, slot });
        }
        assert_eq!(b.batch_len(), 2);
        assert_eq!(b.num_batches(), 4);
        assert_eq!(b.total_blocks(), 8);
        // Slot-sequential columns coalesce to one run per column.
        assert_eq!(b.num_runs(), 2);
        // Materialisation reproduces the pushed batch-major order.
        let mut cursor = BatchCursor::default();
        let mut out = Vec::new();
        b.begin(&mut cursor);
        let mut batches = 0;
        while b.next_batch_into(&mut cursor, &mut out) {
            assert_eq!(
                out,
                vec![
                    BlockRef {
                        disk: 0,
                        slot: batches
                    },
                    BlockRef {
                        disk: 1,
                        slot: batches
                    }
                ]
            );
            batches += 1;
        }
        assert_eq!(batches, 4);
        // Reset reuses the storage with a new shape.
        b.reset(4);
        assert!(b.is_empty());
        assert_eq!(b.num_batches(), 0);
        assert_eq!(b.num_runs(), 0);
    }

    #[test]
    fn block_batches_breaks_runs_on_disk_or_slot_discontinuity() {
        let mut b = BlockBatches::default();
        b.reset(1);
        // slot run broken by a gap, then by a disk change.
        for r in [
            BlockRef { disk: 0, slot: 0 },
            BlockRef { disk: 0, slot: 1 },
            BlockRef { disk: 0, slot: 3 },
            BlockRef { disk: 1, slot: 4 },
        ] {
            b.push(r);
        }
        assert_eq!(b.num_runs(), 3);
        assert_eq!(b.total_blocks(), 4);
        let mut cursor = BatchCursor::default();
        let mut out = Vec::new();
        let mut got = Vec::new();
        b.begin(&mut cursor);
        while b.next_batch_into(&mut cursor, &mut out) {
            got.extend(out.iter().copied());
        }
        assert_eq!(
            got,
            vec![
                BlockRef { disk: 0, slot: 0 },
                BlockRef { disk: 0, slot: 1 },
                BlockRef { disk: 0, slot: 3 },
                BlockRef { disk: 1, slot: 4 },
            ]
        );
    }
}
