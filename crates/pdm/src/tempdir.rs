//! Self-cleaning scratch directories for the file-backed disk paths.
//!
//! File-backend tests and benches need a directory of per-disk files
//! that disappears afterwards *even when the test panics* — ad-hoc
//! `std::fs::remove_dir_all` calls at the end of a test leak the
//! directory on every assertion failure. [`TempDir`] is the RAII
//! guard: the directory is created unique on construction and removed
//! on drop, which Rust runs during unwinding too.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide counter so concurrent tests in one process get
/// distinct directories.
static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under a parent (by default the system
/// temp dir), removed — recursively — when the guard drops.
///
/// ```
/// use pdm::tempdir::TempDir;
/// let dir = TempDir::new("pdm-doc");
/// std::fs::write(dir.path().join("disk000.bin"), b"x").unwrap();
/// let kept = dir.path().to_path_buf();
/// drop(dir);
/// assert!(!kept.exists());
/// ```
#[must_use = "the directory is removed when the guard drops"]
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `<system temp dir>/<prefix>-<pid>-<seq>`.
    pub fn new(prefix: &str) -> Self {
        Self::new_in(&std::env::temp_dir(), prefix)
    }

    /// Creates `<parent>/<prefix>-<pid>-<seq>` (parents are created as
    /// needed) — for pointing scratch space at, e.g., a tmpfs mount.
    pub fn new_in(parent: &Path, prefix: &str) -> Self {
        let seq = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = parent.join(format!("{prefix}-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&path)
            .unwrap_or_else(|e| panic!("create temp dir {}: {e}", path.display()));
        TempDir { path }
    }

    /// The directory's path, valid until the guard drops.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best effort: a vanished directory is already what we want.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_and_removed_on_drop() {
        let a = TempDir::new("pdm-tempdir-test");
        let b = TempDir::new("pdm-tempdir-test");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir() && b.path().is_dir());
        let (pa, pb) = (a.path().to_path_buf(), b.path().to_path_buf());
        std::fs::write(pa.join("nested.bin"), [0u8; 16]).unwrap();
        drop(a);
        drop(b);
        assert!(!pa.exists(), "drop must remove the directory and contents");
        assert!(!pb.exists());
    }
}
