//! Vitter–Shriver parallel disk model (PDM) simulator.
//!
//! The model (Vitter & Shriver 1990; the cost model of the BMMC paper):
//! `N` records live on `D` disks in blocks of `B` records; a RAM holds
//! `M` records; one **parallel I/O operation** transfers at most one
//! block per disk (up to `BD` records). Algorithms are charged by the
//! number of parallel I/Os only.
//!
//! This crate provides:
//! * [`Geometry`] — validated `(N, B, D, M)` quadruples and the paper's
//!   `b, d, m, n` logarithms;
//! * [`Layout`] — Figure 2 address-field parsing (offset / disk /
//!   stripe / relative block / memoryload);
//! * [`DiskSystem`] — the disk array itself, with striped and
//!   independent parallel I/O, exact [`IoStats`] accounting, memory- or
//!   file-backed storage, optional one-thread-per-disk servicing, and
//!   deterministic fault injection;
//! * [`Memory`] — the M-record internal memory with capacity
//!   enforcement, plus in-place permutation by cycle-following;
//! * [`PassEngine`] — the shared streaming loop (read a memoryload,
//!   rearrange in RAM, write it out) with double-buffered I/O overlap
//!   on the persistent per-disk service threads.
//!
//! ```
//! use pdm::{DiskSystem, Geometry};
//!
//! let geom = Geometry::new(64, 2, 8, 32).unwrap(); // Figure 1 of the paper
//! let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 1);
//! sys.load_records(0, &(0..64).collect::<Vec<_>>());
//! let stripe0 = sys.read_stripe(0).unwrap();
//! assert_eq!(stripe0, (0..16).collect::<Vec<_>>());
//! assert_eq!(sys.stats().parallel_ios(), 1);
//! ```

#![deny(missing_docs)]

pub mod backend;
pub mod config;
pub mod engine;
pub mod error;
pub mod fault;
pub mod layout;
pub mod memory;
pub mod parallel;
pub mod proto;
pub mod record;
pub mod retry;
pub mod sched;
pub mod stats;
pub mod system;
pub mod tempdir;
pub mod timing;
pub mod transport;

pub use config::Geometry;
pub use engine::{BatchCursor, BlockBatches, PassEngine, ReadPlan, WritePlan};
pub use error::{PdmError, Result};
pub use fault::FaultPlan;
pub use layout::Layout;
pub use memory::{permute_in_place, Memory};
pub use parallel::Transport;
pub use record::{ByteRecord, Record, TaggedRecord};
pub use retry::{RetryPolicy, RetryStats};
pub use sched::{FairCore, FairScheduler, JobId, JobUsage, SchedHandle};
pub use stats::{IoStats, MsgStats};
pub use system::{
    Backend, BlockRef, BufferPoolStats, DiskSystem, ReadTicket, ServiceMode, WriteTicket,
};
pub use tempdir::TempDir;
pub use timing::{TimingModel, TimingTracker};
pub use transport::{RemoteDisk, RespawnSpec, SimNetModel, TransportConfig, UdsConfig};
