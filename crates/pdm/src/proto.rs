//! The disk-service wire protocol: [`crate::parallel::Cmd`] /
//! [`crate::parallel::Completion`] as explicit, framed bytes.
//!
//! The in-process disk service moves commands over channels with owned
//! buffers — zero-copy, but inseparable from the address space. This
//! module pins down the *serialized* form of the same request/reply
//! protocol so a disk worker can live behind any byte stream: a
//! Unix-domain socket to a `pdm-diskd` process, a simulated network
//! (the SimNet transport encodes and decodes through exactly this
//! code), or, later, a TCP connection to another host.
//!
//! # Framing
//!
//! Every message is one *frame*: a little-endian `u32` byte length
//! followed by that many body bytes. Frames never exceed
//! [`MAX_FRAME`].
//!
//! # Handshake
//!
//! The client opens with a HELLO frame — magic `"PDMD"`, the client's
//! [`PROTO_VERSION`], and the disk geometry (block records × record
//! bytes, slot count). The worker answers with HELLO-OK (echoing its
//! version) or refuses: a version mismatch surfaces as
//! [`PdmError::ProtocolVersion`] *before any data moves*, a geometry
//! mismatch as [`PdmError::Config`].
//!
//! # Data plane
//!
//! | Request            | Body                                   | Reply (ok)            |
//! |--------------------|----------------------------------------|-----------------------|
//! | READ `slot`        | tag, idx `u64`, slot `u64`             | tag, idx, block bytes |
//! | WRITE `slot`       | tag, idx `u64`, slot `u64`, block bytes| tag, idx              |
//! | STOP               | tag                                    | none (worker exits)   |
//!
//! Record payloads serialize through the existing
//! [`crate::record::ByteRecord`] surface — the same fixed-width layout
//! the file backend pins on disk — so a round trip is lossless and
//! placement is byte-identical to the in-process path. Errors travel
//! as typed reply bodies; a worker-side [`PdmError::OutOfRange`] keeps
//! its slot diagnostics across the wire, and, like local disk units,
//! arrives with a placeholder disk index for
//! [`PdmError::with_disk`] to patch.

use crate::error::{PdmError, Result};
use crate::record::ByteRecord;
use std::path::Path;

/// Wire-protocol version; bumped on any incompatible frame change.
pub const PROTO_VERSION: u32 = 1;

/// HELLO magic, so a mis-wired peer fails fast and loudly.
pub const MAGIC: [u8; 4] = *b"PDMD";

/// Frames larger than this are rejected as corrupt (no legitimate
/// message approaches it: the largest frame is one block plus a
/// 17-byte header).
pub const MAX_FRAME: usize = 1 << 26;

/// Bytes of the length prefix preceding every frame body.
pub const FRAME_HEADER: usize = 4;

// Request tags.
const REQ_READ: u8 = 1;
const REQ_WRITE: u8 = 2;
const REQ_STOP: u8 = 3;

// Reply tags. The retryable taxonomy (transient fault, timeout,
// disconnect) crosses the wire structurally so the client's retry
// layer can classify a worker-side failure without string matching.
const REP_OK: u8 = 0;
const REP_ERR_OUT_OF_RANGE: u8 = 1;
const REP_ERR_OTHER: u8 = 2;
const REP_ERR_TRANSIENT: u8 = 3;
const REP_ERR_TIMEOUT: u8 = 4;
const REP_ERR_DISCONNECTED: u8 = 5;

// HELLO reply tags.
const HELLO_OK: u8 = 0;
const HELLO_BAD_VERSION: u8 = 1;
const HELLO_BAD_GEOMETRY: u8 = 2;

/// Appends a little-endian `u32` to a frame under construction.
///
/// The `put_*` helpers, [`begin_frame`]/[`end_frame`], [`Take`], and
/// [`read_frame`] are the reusable framing toolkit: higher-level
/// protocols (the job service's control plane) build their own message
/// sets on the same conventions.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64` to a frame under construction.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reserves the length prefix of a new frame, returning the position
/// to hand [`end_frame`] once the body is appended.
pub fn begin_frame(out: &mut Vec<u8>) -> usize {
    let at = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER]);
    at
}

/// Backpatches the length prefix reserved at `at` by [`begin_frame`].
pub fn end_frame(out: &mut [u8], at: usize) {
    let len = (out.len() - at - FRAME_HEADER) as u32;
    out[at..at + FRAME_HEADER].copy_from_slice(&len.to_le_bytes());
}

/// Reads one frame body into `buf`, returning the total wire bytes
/// consumed (header included). Refuses frames over [`MAX_FRAME`].
pub fn read_frame(r: &mut impl std::io::Read, buf: &mut Vec<u8>) -> std::io::Result<usize> {
    let mut hdr = [0u8; FRAME_HEADER];
    r.read_exact(&mut hdr)?;
    let len = u32::from_le_bytes(hdr) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds protocol maximum"),
        ));
    }
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(FRAME_HEADER + len)
}

/// A cursor over a frame body that turns truncation into a typed
/// error instead of a panic.
#[derive(Debug)]
pub struct Take<'a>(pub &'a [u8]);

impl<'a> Take<'a> {
    /// Consumes one byte.
    pub fn u8(&mut self) -> Result<u8> {
        let (&b, rest) = self
            .0
            .split_first()
            .ok_or_else(|| PdmError::Io("truncated protocol frame".into()))?;
        self.0 = rest;
        Ok(b)
    }

    /// Consumes a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Consumes a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Consumes exactly `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.0.len() < n {
            return Err(PdmError::Io("truncated protocol frame".into()));
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }

    /// Consumes the remainder of the body.
    pub fn rest(self) -> &'a [u8] {
        self.0
    }
}

// ---------------------------------------------------------------------
// HELLO.

/// Decoded HELLO parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Client's wire-protocol version.
    pub version: u32,
    /// Records per block.
    pub block: usize,
    /// Serialized record width.
    pub record_bytes: usize,
    /// Block slots on the disk.
    pub slots: usize,
}

impl Hello {
    /// Bytes per block on the wire (and in the worker's store).
    pub fn block_bytes(&self) -> usize {
        self.block * self.record_bytes
    }
}

/// Appends a framed HELLO.
pub fn encode_hello(out: &mut Vec<u8>, block: usize, record_bytes: usize, slots: usize) {
    let at = begin_frame(out);
    out.extend_from_slice(&MAGIC);
    put_u32(out, PROTO_VERSION);
    put_u32(out, block as u32);
    put_u32(out, record_bytes as u32);
    put_u64(out, slots as u64);
    end_frame(out, at);
}

/// Decodes a HELLO body (frame prefix already stripped).
pub fn decode_hello(body: &[u8]) -> Result<Hello> {
    let mut t = Take(body);
    if t.bytes(4)? != MAGIC {
        return Err(PdmError::Io("bad protocol magic in HELLO".into()));
    }
    Ok(Hello {
        version: t.u32()?,
        block: t.u32()? as usize,
        record_bytes: t.u32()? as usize,
        slots: t.u64()? as usize,
    })
}

/// Appends a framed HELLO-OK carrying the worker's version.
pub fn encode_hello_ok(out: &mut Vec<u8>, version: u32) {
    let at = begin_frame(out);
    out.push(HELLO_OK);
    put_u32(out, version);
    end_frame(out, at);
}

/// Appends a framed HELLO refusal for a version mismatch.
pub fn encode_hello_bad_version(out: &mut Vec<u8>, worker_version: u32) {
    let at = begin_frame(out);
    out.push(HELLO_BAD_VERSION);
    put_u32(out, worker_version);
    end_frame(out, at);
}

/// Appends a framed HELLO refusal for a geometry mismatch, echoing the
/// worker's actual geometry for the diagnostic.
pub fn encode_hello_bad_geometry(out: &mut Vec<u8>, block_bytes: usize, slots: usize) {
    let at = begin_frame(out);
    out.push(HELLO_BAD_GEOMETRY);
    put_u64(out, block_bytes as u64);
    put_u64(out, slots as u64);
    end_frame(out, at);
}

/// Decodes a HELLO reply body. `Ok(())` means the worker accepted the
/// connection; errors carry a placeholder disk index for
/// [`PdmError::with_disk`].
pub fn decode_hello_reply(body: &[u8], expected_version: u32) -> Result<()> {
    let mut t = Take(body);
    match t.u8()? {
        HELLO_OK => {
            let v = t.u32()?;
            if v == expected_version {
                Ok(())
            } else {
                Err(PdmError::ProtocolVersion {
                    disk: usize::MAX,
                    expected: expected_version,
                    actual: v,
                })
            }
        }
        HELLO_BAD_VERSION => Err(PdmError::ProtocolVersion {
            disk: usize::MAX,
            expected: expected_version,
            actual: t.u32()?,
        }),
        HELLO_BAD_GEOMETRY => {
            let block_bytes = t.u64()?;
            let slots = t.u64()?;
            Err(PdmError::Config(format!(
                "disk worker geometry mismatch: worker has {block_bytes}-byte blocks × {slots} slots"
            )))
        }
        tag => Err(PdmError::Io(format!("unknown HELLO reply tag {tag}"))),
    }
}

// ---------------------------------------------------------------------
// Requests.

/// A decoded data-plane request.
#[derive(Debug, PartialEq, Eq)]
pub enum Request<'a> {
    /// Read block `slot`; echo `idx` in the reply.
    Read {
        /// Caller's operation index, echoed verbatim in the reply.
        idx: u64,
        /// Block slot to read.
        slot: u64,
    },
    /// Write `payload` (one block of bytes) to `slot`.
    Write {
        /// Caller's operation index, echoed verbatim in the reply.
        idx: u64,
        /// Block slot to write.
        slot: u64,
        /// One block of serialized record bytes.
        payload: &'a [u8],
    },
    /// Shut the worker down.
    Stop,
}

/// Appends a framed READ request.
pub fn encode_read(out: &mut Vec<u8>, idx: u64, slot: u64) {
    let at = begin_frame(out);
    out.push(REQ_READ);
    put_u64(out, idx);
    put_u64(out, slot);
    end_frame(out, at);
}

/// Appends a framed WRITE request, serializing `data` through
/// [`ByteRecord`].
pub fn encode_write<R: ByteRecord>(out: &mut Vec<u8>, idx: u64, slot: u64, data: &[R]) {
    let at = begin_frame(out);
    out.push(REQ_WRITE);
    put_u64(out, idx);
    put_u64(out, slot);
    let base = out.len();
    out.resize(base + data.len() * R::BYTES, 0);
    for (i, r) in data.iter().enumerate() {
        r.to_bytes(&mut out[base + i * R::BYTES..base + (i + 1) * R::BYTES]);
    }
    end_frame(out, at);
}

/// Appends a framed STOP request.
pub fn encode_stop(out: &mut Vec<u8>) {
    let at = begin_frame(out);
    out.push(REQ_STOP);
    end_frame(out, at);
}

/// Decodes a request body (frame prefix already stripped).
pub fn decode_request(body: &[u8]) -> Result<Request<'_>> {
    let mut t = Take(body);
    match t.u8()? {
        REQ_READ => Ok(Request::Read {
            idx: t.u64()?,
            slot: t.u64()?,
        }),
        REQ_WRITE => Ok(Request::Write {
            idx: t.u64()?,
            slot: t.u64()?,
            payload: t.rest(),
        }),
        REQ_STOP => Ok(Request::Stop),
        tag => Err(PdmError::Io(format!("unknown request tag {tag}"))),
    }
}

// ---------------------------------------------------------------------
// Replies.

/// A decoded data-plane reply: the echoed request index and either the
/// read payload (empty for writes) or the worker's error.
#[derive(Debug)]
pub struct Reply<'a> {
    /// The request index this reply answers.
    pub idx: u64,
    /// Payload bytes on success (one block for reads, empty for
    /// writes) or the transfer error.
    pub result: std::result::Result<&'a [u8], PdmError>,
}

/// Appends a framed OK reply with a payload (reads).
pub fn encode_ok(out: &mut Vec<u8>, idx: u64, payload: &[u8]) {
    let at = begin_frame(out);
    out.push(REP_OK);
    put_u64(out, idx);
    out.extend_from_slice(payload);
    end_frame(out, at);
}

/// Appends a framed error reply. [`PdmError::OutOfRange`] and the
/// retryable taxonomy ([`PdmError::TransientFault`],
/// [`PdmError::Timeout`], [`PdmError::Disconnected`]) keep their
/// diagnostics structurally — crucially, they stay *classifiable* by
/// [`PdmError::is_retryable`] on the far side; any other error crosses
/// as its display string.
pub fn encode_err(out: &mut Vec<u8>, idx: u64, err: &PdmError) {
    let at = begin_frame(out);
    match err {
        PdmError::OutOfRange {
            slot,
            slots_per_disk,
            ..
        } => {
            out.push(REP_ERR_OUT_OF_RANGE);
            put_u64(out, idx);
            put_u64(out, *slot as u64);
            put_u64(out, *slots_per_disk as u64);
        }
        PdmError::TransientFault { op, attempt, .. } => {
            out.push(REP_ERR_TRANSIENT);
            put_u64(out, idx);
            put_u64(out, *op);
            put_u32(out, *attempt);
        }
        PdmError::Timeout {
            op, attempt, ms, ..
        } => {
            out.push(REP_ERR_TIMEOUT);
            put_u64(out, idx);
            put_u64(out, *op);
            put_u32(out, *attempt);
            put_u64(out, *ms);
        }
        PdmError::Disconnected { .. } => {
            out.push(REP_ERR_DISCONNECTED);
            put_u64(out, idx);
        }
        other => {
            out.push(REP_ERR_OTHER);
            put_u64(out, idx);
            out.extend_from_slice(other.to_string().as_bytes());
        }
    }
    end_frame(out, at);
}

/// Decodes a reply body (frame prefix already stripped). Worker-side
/// errors arrive with a placeholder disk index, exactly like errors
/// from local disk units.
pub fn decode_reply(body: &[u8]) -> Result<Reply<'_>> {
    let mut t = Take(body);
    let tag = t.u8()?;
    let idx = t.u64()?;
    match tag {
        REP_OK => Ok(Reply {
            idx,
            result: Ok(t.rest()),
        }),
        REP_ERR_OUT_OF_RANGE => {
            let slot = t.u64()? as usize;
            let slots_per_disk = t.u64()? as usize;
            Ok(Reply {
                idx,
                result: Err(PdmError::OutOfRange {
                    disk: usize::MAX,
                    slot,
                    slots_per_disk,
                }),
            })
        }
        REP_ERR_TRANSIENT => {
            let op = t.u64()?;
            let attempt = t.u32()?;
            Ok(Reply {
                idx,
                result: Err(PdmError::TransientFault {
                    op,
                    disk: usize::MAX,
                    attempt,
                }),
            })
        }
        REP_ERR_TIMEOUT => {
            let op = t.u64()?;
            let attempt = t.u32()?;
            let ms = t.u64()?;
            Ok(Reply {
                idx,
                result: Err(PdmError::Timeout {
                    disk: usize::MAX,
                    op,
                    attempt,
                    ms,
                }),
            })
        }
        REP_ERR_DISCONNECTED => Ok(Reply {
            idx,
            result: Err(PdmError::Disconnected { disk: usize::MAX }),
        }),
        REP_ERR_OTHER => Ok(Reply {
            idx,
            result: Err(PdmError::Io(String::from_utf8_lossy(t.rest()).into_owned())),
        }),
        tag => Err(PdmError::Io(format!("unknown reply tag {tag}"))),
    }
}

// ---------------------------------------------------------------------
// The worker.

/// Byte-level storage behind a [`Worker`] — the serialized twin of
/// [`crate::backend::MemDisk`] / [`crate::backend::FileDisk`]. The
/// worker stores blocks as raw bytes because the wire already carries
/// them that way; it never deserializes records.
enum ByteStore {
    Mem(Vec<u8>),
    File(std::fs::File),
}

/// The server side of the protocol: owns one disk's storage and turns
/// request frames into reply frames. Both the `pdm-diskd` process and
/// the SimNet transport drive this same struct, so the simulated
/// network exercises the identical protocol implementation that runs
/// out of process.
pub struct Worker {
    block_bytes: usize,
    slots: usize,
    store: ByteStore,
    /// Reusable block-sized staging buffer (file reads).
    staging: Vec<u8>,
}

impl Worker {
    /// A memory-backed worker: `slots` zeroed blocks of `block_bytes`.
    pub fn new_mem(block_bytes: usize, slots: usize) -> Self {
        Worker {
            block_bytes,
            slots,
            store: ByteStore::Mem(vec![0u8; block_bytes * slots]),
            staging: vec![0u8; block_bytes],
        }
    }

    /// A file-backed worker over a preallocated file at `path`
    /// (created or truncated), byte-compatible with
    /// [`crate::backend::FileDisk`]'s on-disk layout.
    pub fn new_file(path: &Path, block_bytes: usize, slots: usize) -> Result<Self> {
        Self::file_worker(path, block_bytes, slots, true)
    }

    /// A file-backed worker that **reopens** an existing store at
    /// `path` without truncating it — the respawn path: a relaunched
    /// `pdm-diskd` must come back with the blocks its predecessor
    /// already wrote. (`set_len` to the same size preserves content.)
    pub fn open_file(path: &Path, block_bytes: usize, slots: usize) -> Result<Self> {
        Self::file_worker(path, block_bytes, slots, false)
    }

    fn file_worker(path: &Path, block_bytes: usize, slots: usize, truncate: bool) -> Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(truncate)
            .open(path)
            .map_err(|e| PdmError::Io(format!("create {}: {e}", path.display())))?;
        file.set_len((block_bytes * slots) as u64)
            .map_err(|e| PdmError::Io(format!("set_len {}: {e}", path.display())))?;
        Ok(Worker {
            block_bytes,
            slots,
            store: ByteStore::File(file),
            staging: vec![0u8; block_bytes],
        })
    }

    /// Bytes per block.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Block slots on this disk.
    pub fn slots(&self) -> usize {
        self.slots
    }

    fn admit(&self, slot: u64) -> Result<()> {
        if slot as usize >= self.slots {
            return Err(PdmError::OutOfRange {
                disk: usize::MAX,
                slot: slot as usize,
                slots_per_disk: self.slots,
            });
        }
        Ok(())
    }

    #[cfg(unix)]
    fn file_read(file: &std::fs::File, buf: &mut [u8], off: u64) -> std::io::Result<()> {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, off)
    }

    #[cfg(unix)]
    fn file_write(file: &std::fs::File, buf: &[u8], off: u64) -> std::io::Result<()> {
        use std::os::unix::fs::FileExt;
        file.write_all_at(buf, off)
    }

    #[cfg(not(unix))]
    fn file_read(mut file: &std::fs::File, buf: &mut [u8], off: u64) -> std::io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        file.seek(SeekFrom::Start(off))?;
        file.read_exact(buf)
    }

    #[cfg(not(unix))]
    fn file_write(mut file: &std::fs::File, buf: &[u8], off: u64) -> std::io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        file.seek(SeekFrom::Start(off))?;
        file.write_all(buf)
    }

    fn read_block(&mut self, slot: u64, idx: u64, out: &mut Vec<u8>) {
        if let Err(e) = self.admit(slot) {
            encode_err(out, idx, &e);
            return;
        }
        let off = slot as usize * self.block_bytes;
        match &self.store {
            ByteStore::Mem(data) => {
                encode_ok(out, idx, &data[off..off + self.block_bytes]);
            }
            ByteStore::File(file) => match Self::file_read(file, &mut self.staging, off as u64) {
                Ok(()) => encode_ok(out, idx, &self.staging),
                Err(e) => encode_err(out, idx, &PdmError::Io(format!("read_at slot {slot}: {e}"))),
            },
        }
    }

    fn write_block(&mut self, slot: u64, idx: u64, payload: &[u8], out: &mut Vec<u8>) {
        if let Err(e) = self.admit(slot) {
            encode_err(out, idx, &e);
            return;
        }
        if payload.len() != self.block_bytes {
            encode_err(
                out,
                idx,
                &PdmError::Io(format!(
                    "write payload is {} bytes, block is {}",
                    payload.len(),
                    self.block_bytes
                )),
            );
            return;
        }
        let off = slot as usize * self.block_bytes;
        match &mut self.store {
            ByteStore::Mem(data) => {
                data[off..off + self.block_bytes].copy_from_slice(payload);
                encode_ok(out, idx, &[]);
            }
            ByteStore::File(file) => match Self::file_write(file, payload, off as u64) {
                Ok(()) => encode_ok(out, idx, &[]),
                Err(e) => encode_err(
                    out,
                    idx,
                    &PdmError::Io(format!("write_at slot {slot}: {e}")),
                ),
            },
        }
    }

    /// Handles one request body, appending the framed reply to `out`.
    /// Returns `false` when the request was STOP (no reply is sent;
    /// the serve loop exits). Transfer failures become error *replies*,
    /// not `Err` — only an unparseable frame is a protocol error.
    pub fn handle(&mut self, body: &[u8], out: &mut Vec<u8>) -> Result<bool> {
        match decode_request(body)? {
            Request::Read { idx, slot } => {
                self.read_block(slot, idx, out);
                Ok(true)
            }
            Request::Write { idx, slot, payload } => {
                self.write_block(slot, idx, payload, out);
                Ok(true)
            }
            Request::Stop => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TaggedRecord;

    fn body(frame: &[u8]) -> &[u8] {
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(frame.len(), FRAME_HEADER + len, "exactly one frame");
        &frame[FRAME_HEADER..]
    }

    #[test]
    fn hello_round_trip() {
        let mut f = Vec::new();
        encode_hello(&mut f, 8, 16, 1024);
        let h = decode_hello(body(&f)).unwrap();
        assert_eq!(
            h,
            Hello {
                version: PROTO_VERSION,
                block: 8,
                record_bytes: 16,
                slots: 1024
            }
        );
        assert_eq!(h.block_bytes(), 128);

        let mut ok = Vec::new();
        encode_hello_ok(&mut ok, PROTO_VERSION);
        decode_hello_reply(body(&ok), PROTO_VERSION).unwrap();

        let mut bad = Vec::new();
        encode_hello_bad_version(&mut bad, 7);
        let err = decode_hello_reply(body(&bad), PROTO_VERSION).unwrap_err();
        assert!(matches!(
            err,
            PdmError::ProtocolVersion {
                expected: PROTO_VERSION,
                actual: 7,
                ..
            }
        ));

        let mut geo = Vec::new();
        encode_hello_bad_geometry(&mut geo, 64, 99);
        assert!(matches!(
            decode_hello_reply(body(&geo), PROTO_VERSION),
            Err(PdmError::Config(_))
        ));
    }

    #[test]
    fn hello_ok_with_unexpected_version_is_refused() {
        // A worker that answers OK but with a different version is
        // still a mismatch — the client must not proceed.
        let mut ok = Vec::new();
        encode_hello_ok(&mut ok, 9);
        assert!(matches!(
            decode_hello_reply(body(&ok), PROTO_VERSION),
            Err(PdmError::ProtocolVersion {
                expected: PROTO_VERSION,
                actual: 9,
                ..
            })
        ));
    }

    #[test]
    fn request_round_trips() {
        let mut f = Vec::new();
        encode_read(&mut f, 5, 17);
        assert_eq!(
            decode_request(body(&f)).unwrap(),
            Request::Read { idx: 5, slot: 17 }
        );

        let recs = [TaggedRecord::new(3), TaggedRecord::new(4)];
        let mut w = Vec::new();
        encode_write(&mut w, 9, 2, &recs);
        match decode_request(body(&w)).unwrap() {
            Request::Write { idx, slot, payload } => {
                assert_eq!((idx, slot), (9, 2));
                assert_eq!(payload.len(), 2 * TaggedRecord::BYTES);
                assert_eq!(TaggedRecord::from_bytes(&payload[16..]), recs[1]);
            }
            other => panic!("decoded {other:?}"),
        }

        let mut s = Vec::new();
        encode_stop(&mut s);
        assert_eq!(decode_request(body(&s)).unwrap(), Request::Stop);
    }

    #[test]
    fn reply_round_trips() {
        let mut ok = Vec::new();
        encode_ok(&mut ok, 11, &[1, 2, 3]);
        let r = decode_reply(body(&ok)).unwrap();
        assert_eq!(r.idx, 11);
        assert_eq!(r.result.unwrap(), &[1, 2, 3]);

        let mut range = Vec::new();
        encode_err(
            &mut range,
            4,
            &PdmError::OutOfRange {
                disk: usize::MAX,
                slot: 9,
                slots_per_disk: 8,
            },
        );
        let r = decode_reply(body(&range)).unwrap();
        assert_eq!(r.idx, 4);
        assert!(matches!(
            r.result.unwrap_err(),
            PdmError::OutOfRange {
                slot: 9,
                slots_per_disk: 8,
                ..
            }
        ));

        let mut other = Vec::new();
        encode_err(&mut other, 6, &PdmError::StripedOnly);
        let r = decode_reply(body(&other)).unwrap();
        assert!(matches!(r.result.unwrap_err(), PdmError::Io(_)));
    }

    /// The retryable taxonomy must survive a wire round trip
    /// *structurally*: the far side classifies with `is_retryable`,
    /// not by parsing display strings.
    #[test]
    fn retryable_errors_round_trip_typed() {
        let cases = [
            PdmError::TransientFault {
                op: 42,
                disk: usize::MAX,
                attempt: 1,
            },
            PdmError::Timeout {
                disk: usize::MAX,
                op: 7,
                attempt: 2,
                ms: 125,
            },
            PdmError::Disconnected { disk: usize::MAX },
        ];
        for (i, err) in cases.iter().enumerate() {
            let mut f = Vec::new();
            encode_err(&mut f, i as u64, err);
            let r = decode_reply(body(&f)).unwrap();
            assert_eq!(r.idx, i as u64);
            let back = r.result.unwrap_err();
            assert_eq!(&back, err, "case {i}");
            assert!(back.is_retryable(), "case {i}");
            // And with_disk patches the placeholder as for local units.
            assert!(!matches!(
                back.with_disk(3),
                PdmError::TransientFault {
                    disk: usize::MAX,
                    ..
                } | PdmError::Timeout {
                    disk: usize::MAX,
                    ..
                } | PdmError::Disconnected { disk: usize::MAX }
            ));
        }
    }

    /// `open_file` must *not* zero an existing store — the respawn
    /// path depends on a relaunched worker seeing its predecessor's
    /// blocks.
    #[test]
    fn open_file_preserves_existing_blocks() {
        let dir = crate::tempdir::TempDir::new("pdm-proto-reopen");
        let path = dir.path().join("w.bin");
        let payload: Vec<u8> = (0..8).collect();
        let mut req = Vec::new();
        let mut rep = Vec::new();
        {
            let mut w = Worker::new_file(&path, 8, 3).unwrap();
            encode_write::<u8>(&mut req, 0, 1, &payload);
            w.handle(body(&req), &mut rep).unwrap();
            assert!(decode_reply(body(&rep)).unwrap().result.is_ok());
        } // worker "crashes"
        let mut w = Worker::open_file(&path, 8, 3).unwrap();
        req.clear();
        rep.clear();
        encode_read(&mut req, 1, 1);
        w.handle(body(&req), &mut rep).unwrap();
        let r = decode_reply(body(&rep)).unwrap();
        assert_eq!(r.result.unwrap(), payload.as_slice());
        // new_file, by contrast, truncates.
        let mut w = Worker::new_file(&path, 8, 3).unwrap();
        req.clear();
        rep.clear();
        encode_read(&mut req, 2, 1);
        w.handle(body(&req), &mut rep).unwrap();
        let r = decode_reply(body(&rep)).unwrap();
        assert_eq!(r.result.unwrap(), &[0u8; 8]);
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[REQ_READ, 0, 0]).is_err());
        assert!(decode_reply(&[REP_OK]).is_err());
        assert!(decode_hello(b"PDMD\x01").is_err());
        assert!(decode_hello(b"XXXX\x01\x00\x00\x00").is_err());
    }

    #[test]
    fn worker_mem_round_trip_and_errors() {
        let mut w = Worker::new_mem(16, 4);
        assert_eq!(w.block_bytes(), 16);
        assert_eq!(w.slots(), 4);
        let payload: Vec<u8> = (0..16).collect();

        let mut req = Vec::new();
        encode_write::<u8>(&mut req, 0, 2, &payload);
        let mut rep = Vec::new();
        assert!(w.handle(body(&req), &mut rep).unwrap());
        assert!(decode_reply(body(&rep)).unwrap().result.is_ok());

        req.clear();
        rep.clear();
        encode_read(&mut req, 1, 2);
        assert!(w.handle(body(&req), &mut rep).unwrap());
        let r = decode_reply(body(&rep)).unwrap();
        assert_eq!(r.result.unwrap(), payload.as_slice());

        // Out of range keeps its diagnostics across the wire.
        req.clear();
        rep.clear();
        encode_read(&mut req, 2, 99);
        assert!(w.handle(body(&req), &mut rep).unwrap());
        assert!(matches!(
            decode_reply(body(&rep)).unwrap().result.unwrap_err(),
            PdmError::OutOfRange {
                slot: 99,
                slots_per_disk: 4,
                ..
            }
        ));

        // Short write payloads are rejected, not silently truncated.
        req.clear();
        rep.clear();
        encode_write::<u8>(&mut req, 3, 0, &[1, 2, 3]);
        assert!(w.handle(body(&req), &mut rep).unwrap());
        assert!(decode_reply(body(&rep)).unwrap().result.is_err());

        // Stop ends the session without a reply.
        req.clear();
        rep.clear();
        encode_stop(&mut req);
        assert!(!w.handle(body(&req), &mut rep).unwrap());
        assert!(rep.is_empty());
    }

    #[test]
    fn worker_file_store_matches_mem() {
        let dir = crate::tempdir::TempDir::new("pdm-proto");
        let mut mem = Worker::new_mem(8, 3);
        let mut file = Worker::new_file(&dir.path().join("w.bin"), 8, 3).unwrap();
        let mut req = Vec::new();
        let mut rep_mem = Vec::new();
        let mut rep_file = Vec::new();
        for slot in 0..3u64 {
            req.clear();
            let data: Vec<u8> = (0..8).map(|i| (slot as u8) * 8 + i).collect();
            encode_write::<u8>(&mut req, slot, slot, &data);
            mem.handle(body(&req), &mut rep_mem).unwrap();
            file.handle(body(&req), &mut rep_file).unwrap();
        }
        for slot in 0..3u64 {
            req.clear();
            rep_mem.clear();
            rep_file.clear();
            encode_read(&mut req, slot, slot);
            mem.handle(body(&req), &mut rep_mem).unwrap();
            file.handle(body(&req), &mut rep_file).unwrap();
            assert_eq!(rep_mem, rep_file, "slot {slot}");
        }
    }
}
