//! Record-address parsing (the paper's Figure 2).
//!
//! An `n`-bit record address `x = (x_0, …, x_{n−1})`, least significant
//! bit first, is split into fields:
//!
//! ```text
//!   bits 0 .. b        offset of the record within its block
//!   bits b .. b+d      disk number
//!   bits b+d .. n      stripe number
//!   bits b .. m        relative block number (block within memoryload)
//!   bits m .. n        memoryload number
//! ```
//!
//! Record indices vary most rapidly within a block, then among disks,
//! then among stripes (Figure 1).

use crate::config::Geometry;

/// Address-field extractor for a fixed geometry.
///
/// All methods are branch-free shifts/masks; addresses are `u64` (the
/// paper's bit-vector addresses interpreted as integers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    b: u32,
    d: u32,
    m: u32,
    n: u32,
}

impl Layout {
    /// Builds the layout for a geometry.
    pub fn new(geom: &Geometry) -> Self {
        Layout {
            b: geom.b() as u32,
            d: geom.d() as u32,
            m: geom.m() as u32,
            n: geom.n() as u32,
        }
    }

    /// Builds a layout directly from bit widths (`b + d ≤ m < n`).
    ///
    /// # Panics
    /// Panics if the widths are inconsistent.
    pub fn from_bits(b: u32, d: u32, m: u32, n: u32) -> Self {
        assert!(b + d <= m, "b + d = {} must be ≤ m = {m}", b + d);
        assert!(m < n, "m = {m} must be < n = {n}");
        Layout { b, d, m, n }
    }

    /// `n = lg N`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// `b = lg B`.
    #[inline]
    pub fn b(&self) -> u32 {
        self.b
    }

    /// `d = lg D`.
    #[inline]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// `m = lg M`.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// `s = n − (b + d)`: stripe-field width.
    #[inline]
    pub fn s(&self) -> u32 {
        self.n - self.b - self.d
    }

    /// Offset within the block: bits `0..b`.
    #[inline]
    pub fn offset(&self, x: u64) -> u64 {
        x & ((1 << self.b) - 1)
    }

    /// Disk number: bits `b..b+d`.
    #[inline]
    pub fn disk(&self, x: u64) -> u64 {
        (x >> self.b) & ((1 << self.d) - 1)
    }

    /// Stripe number: bits `b+d..n`.
    #[inline]
    pub fn stripe(&self, x: u64) -> u64 {
        x >> (self.b + self.d)
    }

    /// Global block number: bits `b..n` (the paper's "source/target
    /// block" index `x_{b..n−1}`, eq. (7)).
    #[inline]
    pub fn block(&self, x: u64) -> u64 {
        x >> self.b
    }

    /// Relative block number within the memoryload: bits `b..m`
    /// (Figure 2). Ranges over `0 .. M/B`.
    #[inline]
    pub fn relative_block(&self, x: u64) -> u64 {
        (x >> self.b) & ((1 << (self.m - self.b)) - 1)
    }

    /// Memoryload number: bits `m..n`.
    #[inline]
    pub fn memoryload(&self, x: u64) -> u64 {
        x >> self.m
    }

    /// Reassembles an address from offset, disk, and stripe fields.
    #[inline]
    pub fn compose(&self, offset: u64, disk: u64, stripe: u64) -> u64 {
        debug_assert!(offset < (1 << self.b));
        debug_assert!(disk < (1 << self.d));
        debug_assert!(stripe < (1 << self.s()));
        offset | (disk << self.b) | (stripe << (self.b + self.d))
    }

    /// Reassembles an address from a global block number and an offset.
    #[inline]
    pub fn compose_block(&self, block: u64, offset: u64) -> u64 {
        debug_assert!(offset < (1 << self.b));
        (block << self.b) | offset
    }

    /// The disk a global block number resides on: the low `d` bits of
    /// the block number (Section 3, property 3: the disk is encoded in
    /// the least significant `d` bits of the relative block number).
    #[inline]
    pub fn disk_of_block(&self, block: u64) -> u64 {
        block & ((1 << self.d) - 1)
    }

    /// The stripe a global block number resides in.
    #[inline]
    pub fn stripe_of_block(&self, block: u64) -> u64 {
        block >> self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact geometry of the paper's Figure 2: n=13, b=3, d=4, m=8.
    fn fig2() -> Layout {
        Layout::from_bits(3, 4, 8, 13)
    }

    #[test]
    fn figure2_field_widths() {
        let l = fig2();
        assert_eq!(l.s(), 6);
        assert_eq!(l.b(), 3);
        assert_eq!(l.d(), 4);
        assert_eq!(l.m(), 8);
        assert_eq!(l.n(), 13);
    }

    #[test]
    fn figure2_field_extraction() {
        let l = fig2();
        // Address with offset=0b101, disk=0b1001, stripe=0b000011.
        let x = l.compose(0b101, 0b1001, 0b000011);
        assert_eq!(l.offset(x), 0b101);
        assert_eq!(l.disk(x), 0b1001);
        assert_eq!(l.stripe(x), 0b000011);
        // Relative block = bits 3..8 = disk bits ++ low stripe bit.
        assert_eq!(l.relative_block(x), 0b1_1001);
        // Memoryload = bits 8..13 = high 5 stripe bits.
        assert_eq!(l.memoryload(x), 0b00001);
    }

    #[test]
    fn figure1_layout_order() {
        // Figure 1: N=64, B=2, D=8. Record 21 = stripe 1, disk 2, offset 1.
        let g = Geometry::new(64, 2, 8, 32).unwrap();
        let l = Layout::new(&g);
        assert_eq!(l.offset(21), 1);
        assert_eq!(l.disk(21), 2);
        assert_eq!(l.stripe(21), 1);
        // Record 40 = stripe 2, disk 4, offset 0.
        assert_eq!(l.offset(40), 0);
        assert_eq!(l.disk(40), 4);
        assert_eq!(l.stripe(40), 2);
    }

    #[test]
    fn compose_round_trips_every_address() {
        let l = fig2();
        for x in 0..(1u64 << 13) {
            let y = l.compose(l.offset(x), l.disk(x), l.stripe(x));
            assert_eq!(x, y);
            let z = l.compose_block(l.block(x), l.offset(x));
            assert_eq!(x, z);
        }
    }

    #[test]
    fn block_fields_consistent() {
        let l = fig2();
        for x in (0..(1u64 << 13)).step_by(7) {
            let blk = l.block(x);
            assert_eq!(l.disk_of_block(blk), l.disk(x));
            assert_eq!(l.stripe_of_block(blk), l.stripe(x));
            assert_eq!(l.relative_block(x), blk & ((1 << (l.m() - l.b())) - 1));
        }
    }

    #[test]
    fn memoryload_is_high_bits() {
        let l = fig2();
        // One memoryload = M = 256 records = M/BD = 2 stripes.
        for x in 0..(1u64 << 13) {
            assert_eq!(l.memoryload(x), x >> 8);
        }
    }

    #[test]
    #[should_panic(expected = "must be")]
    fn rejects_bd_above_m() {
        Layout::from_bits(5, 4, 8, 13);
    }

    #[test]
    fn single_disk_layout() {
        let l = Layout::from_bits(2, 0, 4, 8);
        assert_eq!(l.disk(0xff), 0);
        assert_eq!(l.stripe(0b11111111), 0b111111);
    }
}
