//! Parallel I/O accounting.
//!
//! The paper's only cost metric is the number of *parallel I/O
//! operations*: each operation transfers at most one block per disk.
//! We additionally classify operations as *striped* (the same block
//! location on every disk) or *independent* (arbitrary locations), since
//! the MLD one-pass algorithm specifically uses striped reads and
//! independent writes (Section 3).

use std::fmt;

/// Counters for every category of parallel I/O the simulator performs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Parallel read operations.
    pub parallel_reads: u64,
    /// Parallel write operations.
    pub parallel_writes: u64,
    /// Reads in which all `D` disks were accessed at the same location.
    pub striped_reads: u64,
    /// Writes in which all `D` disks were accessed at the same location.
    pub striped_writes: u64,
    /// Total blocks transferred from disk.
    pub blocks_read: u64,
    /// Total blocks transferred to disk.
    pub blocks_written: u64,
}

impl IoStats {
    /// Total parallel I/O operations — the paper's cost measure.
    #[inline]
    pub fn parallel_ios(&self) -> u64 {
        self.parallel_reads + self.parallel_writes
    }

    /// Reads that were not striped.
    #[inline]
    pub fn independent_reads(&self) -> u64 {
        self.parallel_reads - self.striped_reads
    }

    /// Writes that were not striped.
    #[inline]
    pub fn independent_writes(&self) -> u64 {
        self.parallel_writes - self.striped_writes
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            parallel_reads: self.parallel_reads - earlier.parallel_reads,
            parallel_writes: self.parallel_writes - earlier.parallel_writes,
            striped_reads: self.striped_reads - earlier.striped_reads,
            striped_writes: self.striped_writes - earlier.striped_writes,
            blocks_read: self.blocks_read - earlier.blocks_read,
            blocks_written: self.blocks_written - earlier.blocks_written,
        }
    }
}

/// Transport message accounting, the communication-volume dual of
/// [`IoStats`].
///
/// When the disk service runs behind a remote transport
/// ([`crate::transport`]), every parallel I/O decomposes into framed
/// request/reply messages; these counters record how many frames and
/// wire bytes moved, per direction, on the data plane (the one-time
/// connection handshake is excluded). In-process service modes move no
/// messages at all, so every counter stays zero there — asserted by the
/// transport equivalence tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsgStats {
    /// Request frames sent to the disk workers.
    pub messages_sent: u64,
    /// Reply frames received from the disk workers.
    pub messages_received: u64,
    /// Wire bytes sent (frame headers included).
    pub bytes_sent: u64,
    /// Wire bytes received (frame headers included).
    pub bytes_received: u64,
}

impl MsgStats {
    /// Total frames in both directions.
    #[inline]
    pub fn messages(&self) -> u64 {
        self.messages_sent + self.messages_received
    }

    /// Total wire bytes in both directions.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// True if no messages have moved (always the case in-process).
    #[inline]
    pub fn is_zero(&self) -> bool {
        *self == MsgStats::default()
    }

    /// Accumulates another counter set (per-disk → aggregate).
    pub fn merge(&mut self, other: &MsgStats) {
        self.messages_sent += other.messages_sent;
        self.messages_received += other.messages_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &MsgStats) -> MsgStats {
        MsgStats {
            messages_sent: self.messages_sent - earlier.messages_sent,
            messages_received: self.messages_received - earlier.messages_received,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
        }
    }
}

impl fmt::Display for MsgStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} messages ({} out / {} in), {} wire bytes ({} out / {} in)",
            self.messages(),
            self.messages_sent,
            self.messages_received,
            self.bytes(),
            self.bytes_sent,
            self.bytes_received,
        )
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} parallel I/Os ({} reads: {} striped / {} independent; \
             {} writes: {} striped / {} independent; \
             {} blocks in, {} blocks out)",
            self.parallel_ios(),
            self.parallel_reads,
            self.striped_reads,
            self.independent_reads(),
            self.parallel_writes,
            self.striped_writes,
            self.independent_writes(),
            self.blocks_read,
            self.blocks_written,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_classes() {
        let s = IoStats {
            parallel_reads: 10,
            parallel_writes: 6,
            striped_reads: 7,
            striped_writes: 2,
            blocks_read: 80,
            blocks_written: 48,
        };
        assert_eq!(s.parallel_ios(), 16);
        assert_eq!(s.independent_reads(), 3);
        assert_eq!(s.independent_writes(), 4);
    }

    #[test]
    fn since_subtracts() {
        let a = IoStats {
            parallel_reads: 5,
            parallel_writes: 3,
            striped_reads: 5,
            striped_writes: 3,
            blocks_read: 40,
            blocks_written: 24,
        };
        let mut b = a;
        b.parallel_reads += 2;
        b.blocks_read += 16;
        let d = b.since(&a);
        assert_eq!(d.parallel_reads, 2);
        assert_eq!(d.blocks_read, 16);
        assert_eq!(d.parallel_writes, 0);
    }

    #[test]
    fn display_mentions_total() {
        let s = IoStats::default();
        assert!(s.to_string().contains("0 parallel I/Os"));
    }

    #[test]
    fn msg_stats_accounting() {
        let mut a = MsgStats::default();
        assert!(a.is_zero());
        a.merge(&MsgStats {
            messages_sent: 3,
            messages_received: 2,
            bytes_sent: 300,
            bytes_received: 150,
        });
        a.merge(&MsgStats {
            messages_sent: 1,
            messages_received: 1,
            bytes_sent: 25,
            bytes_received: 75,
        });
        assert_eq!(a.messages(), 7);
        assert_eq!(a.bytes(), 550);
        let earlier = MsgStats {
            messages_sent: 2,
            messages_received: 1,
            bytes_sent: 100,
            bytes_received: 50,
        };
        let d = a.since(&earlier);
        assert_eq!(d.messages_sent, 2);
        assert_eq!(d.messages_received, 2);
        assert_eq!(d.bytes_sent, 225);
        assert_eq!(d.bytes_received, 175);
        assert!(a.to_string().contains("7 messages"));
    }
}
