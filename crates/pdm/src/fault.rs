//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] names parallel-I/O operations (by global operation
//! index) and disks on which the transfer should misbehave. The
//! [`crate::system::DiskSystem`] consults the plan before each
//! operation and surfaces the matching typed error, letting tests
//! verify that algorithms propagate disk errors instead of silently
//! corrupting data — and, since the retry layer
//! ([`crate::retry::RetryPolicy`]), that *recoverable* failures are
//! absorbed with exact accounting.
//!
//! The failure taxonomy:
//!
//! * [`FaultPlan::fail_at`] — a **permanent** transfer fault: the
//!   operation is rejected before any block moves and retrying cannot
//!   help ([`crate::error::PdmError::Fault`]).
//! * [`FaultPlan::fail_transient_at`] — a **transient** transfer
//!   fault: the *first attempt* of that operation fails
//!   ([`crate::error::PdmError::TransientFault`]); a retry of the same
//!   operation succeeds. Models a correctable bus/medium error.
//! * [`FaultPlan::fail_between`] — a flaky window: every operation in
//!   `[start, end)` transient-fails its first attempt on that disk.
//! * [`FaultPlan::delay_at`] — a **straggler**: that operation on that
//!   disk is `ms` milliseconds slow. Within the per-op timeout budget
//!   the delay is simply charged to the timing model; past it, the
//!   first attempt surfaces [`crate::error::PdmError::Timeout`]
//!   (retryable — the congestion is transient).
//! * [`FaultPlan::disconnect_at`] — a *transport* fault: the link to
//!   the disk's service worker is severed at that operation
//!   ([`crate::parallel::Transport::inject_disconnect`]), so the
//!   failure surfaces **mid-operation** through the completion path as
//!   [`crate::error::PdmError::Disconnected`], and — unlike a transfer
//!   fault — the link stays dead for every later operation unless the
//!   retry policy respawns the worker. This is how the buffer-pool
//!   hygiene tests prove that a worker crash cannot strand pooled
//!   block buffers.
//!
//! Transient faults, delays, and windows are **one-shot per
//! operation**: they model congestion that has passed by the time the
//! retry is issued, which is what makes retry accounting exact
//! (retries == injected transient faults for a plan whose entries all
//! fire).

use std::collections::{BTreeMap, BTreeSet};

/// A schedule of injected failures keyed by (parallel-I/O index, disk).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: BTreeSet<(u64, usize)>,
    disconnects: BTreeSet<(u64, usize)>,
    transients: BTreeSet<(u64, usize)>,
    /// Flaky windows `(start, end, disk)`: ops in `[start, end)`
    /// transient-fail their first attempt on `disk`.
    windows: Vec<(u64, u64, usize)>,
    /// Straggler delays in milliseconds.
    delays: BTreeMap<(u64, usize), u64>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a **permanent** failure of `disk` during parallel I/O
    /// number `op` (operations are numbered from 0 across reads and
    /// writes). Fires on every attempt; not retryable.
    pub fn fail_at(mut self, op: u64, disk: usize) -> Self {
        self.faults.insert((op, disk));
        self
    }

    /// Schedules a **transient** failure of `disk` during parallel I/O
    /// number `op`: the operation's first attempt fails, a retry
    /// succeeds.
    pub fn fail_transient_at(mut self, op: u64, disk: usize) -> Self {
        self.transients.insert((op, disk));
        self
    }

    /// Schedules a flaky window on `disk`: every operation in
    /// `[start, end)` transient-fails its first attempt.
    pub fn fail_between(mut self, start: u64, end: u64, disk: usize) -> Self {
        self.windows.push((start, end, disk));
        self
    }

    /// Schedules a straggler: parallel I/O number `op` on `disk` is
    /// `ms` milliseconds slow (first attempt only).
    pub fn delay_at(mut self, op: u64, disk: usize, ms: u64) -> Self {
        self.delays.insert((op, disk), ms);
        self
    }

    /// Schedules a *transport disconnect* of `disk` at parallel I/O
    /// number `op`: the link to that disk's service worker is severed
    /// just before the operation is serviced, and stays severed
    /// (unless the retry policy respawns it).
    pub fn disconnect_at(mut self, op: u64, disk: usize) -> Self {
        self.disconnects.insert((op, disk));
        self
    }

    /// True if the plan contains a permanent fault for this operation
    /// and any of the participating disks; returns the first faulted
    /// disk.
    pub fn check(&self, op: u64, disks: impl IntoIterator<Item = usize>) -> Option<usize> {
        disks.into_iter().find(|&d| self.faults.contains(&(op, d)))
    }

    /// True if a transient fault (point or window) hits this operation
    /// on any of the participating disks; returns the first such disk.
    /// Callers consult this on an operation's **first attempt only** —
    /// transient faults model congestion that a retry outlives.
    pub fn check_transient(
        &self,
        op: u64,
        disks: impl IntoIterator<Item = usize>,
    ) -> Option<usize> {
        disks.into_iter().find(|&d| {
            self.transients.contains(&(op, d))
                || self
                    .windows
                    .iter()
                    .any(|&(start, end, wd)| wd == d && (start..end).contains(&op))
        })
    }

    /// The slowest scheduled straggler among the participating disks
    /// for this operation, as `(disk, ms)` — a parallel I/O completes
    /// when its slowest disk does. `None` when no delay is scheduled.
    pub fn delay(&self, op: u64, disks: impl IntoIterator<Item = usize>) -> Option<(usize, u64)> {
        disks
            .into_iter()
            .filter_map(|d| self.delays.get(&(op, d)).map(|&ms| (d, ms)))
            .max_by_key(|&(_, ms)| ms)
    }

    /// True if the plan severs the transport to any of the
    /// participating disks at this operation; returns the first such
    /// disk.
    pub fn check_disconnect(
        &self,
        op: u64,
        disks: impl IntoIterator<Item = usize>,
    ) -> Option<usize> {
        disks
            .into_iter()
            .find(|&d| self.disconnects.contains(&(op, d)))
    }

    /// Number of scheduled point faults (permanent, transient,
    /// disconnect, delay entries; windows count as one each).
    pub fn len(&self) -> usize {
        self.faults.len()
            + self.disconnects.len()
            + self.transients.len()
            + self.windows.len()
            + self.delays.len()
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
            && self.disconnects.is_empty()
            && self.transients.is_empty()
            && self.windows.is_empty()
            && self.delays.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.check(0, [0, 1, 2]), None);
        assert_eq!(p.check_transient(0, [0, 1, 2]), None);
        assert_eq!(p.delay(0, [0, 1, 2]), None);
    }

    #[test]
    fn fault_fires_on_matching_op_and_disk() {
        let p = FaultPlan::new().fail_at(3, 1);
        assert_eq!(p.check(3, [0, 1, 2]), Some(1));
        assert_eq!(p.check(2, [0, 1, 2]), None);
        assert_eq!(p.check(3, [0, 2]), None);
    }

    #[test]
    fn multiple_faults() {
        let p = FaultPlan::new().fail_at(0, 0).fail_at(5, 3);
        assert_eq!(p.len(), 2);
        assert_eq!(p.check(0, [0]), Some(0));
        assert_eq!(p.check(5, [3]), Some(3));
    }

    #[test]
    fn disconnects_are_tracked_separately() {
        let p = FaultPlan::new().fail_at(1, 0).disconnect_at(4, 2);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        // A disconnect is not a transfer fault and vice versa.
        assert_eq!(p.check(4, [0, 1, 2]), None);
        assert_eq!(p.check_disconnect(4, [0, 1, 2]), Some(2));
        assert_eq!(p.check_disconnect(1, [0, 1, 2]), None);
        assert_eq!(p.check_disconnect(4, [0, 1]), None);
    }

    #[test]
    fn transients_are_distinct_from_permanent_faults() {
        let p = FaultPlan::new().fail_transient_at(2, 1).fail_at(2, 0);
        assert_eq!(p.check_transient(2, [1, 2]), Some(1));
        assert_eq!(p.check_transient(2, [0, 2]), None);
        assert_eq!(p.check(2, [1, 2]), None);
        assert_eq!(p.check(2, [0]), Some(0));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn windows_cover_half_open_ranges() {
        let p = FaultPlan::new().fail_between(10, 13, 2);
        assert_eq!(p.check_transient(9, [2]), None);
        assert_eq!(p.check_transient(10, [2]), Some(2));
        assert_eq!(p.check_transient(12, [2]), Some(2));
        assert_eq!(p.check_transient(13, [2]), None);
        assert_eq!(p.check_transient(11, [0, 1]), None);
    }

    #[test]
    fn delay_picks_the_slowest_participant() {
        let p = FaultPlan::new().delay_at(5, 0, 20).delay_at(5, 3, 80);
        assert_eq!(p.delay(5, [0, 1, 2, 3]), Some((3, 80)));
        assert_eq!(p.delay(5, [0, 1]), Some((0, 20)));
        assert_eq!(p.delay(4, [0, 3]), None);
    }
}
