//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] names parallel-I/O operations (by global operation
//! index) and disks on which the transfer should fail. The
//! [`crate::system::DiskSystem`] consults the plan before each
//! operation and surfaces [`crate::error::PdmError::Fault`], letting
//! tests verify that algorithms propagate disk errors instead of
//! silently corrupting data.

use std::collections::BTreeSet;

/// A schedule of injected failures keyed by (parallel-I/O index, disk).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: BTreeSet<(u64, usize)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a failure of `disk` during parallel I/O number `op`
    /// (operations are numbered from 0 across reads and writes).
    pub fn fail_at(mut self, op: u64, disk: usize) -> Self {
        self.faults.insert((op, disk));
        self
    }

    /// True if the plan contains a fault for this operation and any of
    /// the participating disks; returns the first faulted disk.
    pub fn check(&self, op: u64, disks: impl IntoIterator<Item = usize>) -> Option<usize> {
        disks.into_iter().find(|&d| self.faults.contains(&(op, d)))
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.check(0, [0, 1, 2]), None);
    }

    #[test]
    fn fault_fires_on_matching_op_and_disk() {
        let p = FaultPlan::new().fail_at(3, 1);
        assert_eq!(p.check(3, [0, 1, 2]), Some(1));
        assert_eq!(p.check(2, [0, 1, 2]), None);
        assert_eq!(p.check(3, [0, 2]), None);
    }

    #[test]
    fn multiple_faults() {
        let p = FaultPlan::new().fail_at(0, 0).fail_at(5, 3);
        assert_eq!(p.len(), 2);
        assert_eq!(p.check(0, [0]), Some(0));
        assert_eq!(p.check(5, [3]), Some(3));
    }
}
