//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] names parallel-I/O operations (by global operation
//! index) and disks on which the transfer should fail. The
//! [`crate::system::DiskSystem`] consults the plan before each
//! operation and surfaces [`crate::error::PdmError::Fault`], letting
//! tests verify that algorithms propagate disk errors instead of
//! silently corrupting data.
//!
//! Two failure shapes exist:
//!
//! * [`FaultPlan::fail_at`] — a *transfer* fault: the operation is
//!   rejected before any block moves.
//! * [`FaultPlan::disconnect_at`] — a *transport* fault: the link to
//!   the disk's service worker is severed at that operation
//!   ([`crate::parallel::Transport::inject_disconnect`]), so the
//!   failure surfaces **mid-operation** through the completion path as
//!   [`crate::error::PdmError::Disconnected`], and — unlike a transfer
//!   fault — the link stays dead for every later operation. This is
//!   how the buffer-pool hygiene tests prove that a worker crash
//!   cannot strand pooled block buffers.

use std::collections::BTreeSet;

/// A schedule of injected failures keyed by (parallel-I/O index, disk).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: BTreeSet<(u64, usize)>,
    disconnects: BTreeSet<(u64, usize)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a failure of `disk` during parallel I/O number `op`
    /// (operations are numbered from 0 across reads and writes).
    pub fn fail_at(mut self, op: u64, disk: usize) -> Self {
        self.faults.insert((op, disk));
        self
    }

    /// Schedules a *transport disconnect* of `disk` at parallel I/O
    /// number `op`: the link to that disk's service worker is severed
    /// just before the operation is serviced, and stays severed.
    pub fn disconnect_at(mut self, op: u64, disk: usize) -> Self {
        self.disconnects.insert((op, disk));
        self
    }

    /// True if the plan contains a fault for this operation and any of
    /// the participating disks; returns the first faulted disk.
    pub fn check(&self, op: u64, disks: impl IntoIterator<Item = usize>) -> Option<usize> {
        disks.into_iter().find(|&d| self.faults.contains(&(op, d)))
    }

    /// True if the plan severs the transport to any of the
    /// participating disks at this operation; returns the first such
    /// disk.
    pub fn check_disconnect(
        &self,
        op: u64,
        disks: impl IntoIterator<Item = usize>,
    ) -> Option<usize> {
        disks
            .into_iter()
            .find(|&d| self.disconnects.contains(&(op, d)))
    }

    /// Number of scheduled faults (transfer faults and disconnects).
    pub fn len(&self) -> usize {
        self.faults.len() + self.disconnects.len()
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.disconnects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.check(0, [0, 1, 2]), None);
    }

    #[test]
    fn fault_fires_on_matching_op_and_disk() {
        let p = FaultPlan::new().fail_at(3, 1);
        assert_eq!(p.check(3, [0, 1, 2]), Some(1));
        assert_eq!(p.check(2, [0, 1, 2]), None);
        assert_eq!(p.check(3, [0, 2]), None);
    }

    #[test]
    fn multiple_faults() {
        let p = FaultPlan::new().fail_at(0, 0).fail_at(5, 3);
        assert_eq!(p.len(), 2);
        assert_eq!(p.check(0, [0]), Some(0));
        assert_eq!(p.check(5, [3]), Some(3));
    }

    #[test]
    fn disconnects_are_tracked_separately() {
        let p = FaultPlan::new().fail_at(1, 0).disconnect_at(4, 2);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        // A disconnect is not a transfer fault and vice versa.
        assert_eq!(p.check(4, [0, 1, 2]), None);
        assert_eq!(p.check_disconnect(4, [0, 1, 2]), Some(2));
        assert_eq!(p.check_disconnect(1, [0, 1, 2]), None);
        assert_eq!(p.check_disconnect(4, [0, 1]), None);
    }
}
