//! PDM geometry: the (N, B, D, M) quadruple and its logarithms.

use crate::error::{PdmError, Result};

/// The Vitter–Shriver parallel-disk geometry.
///
/// `N` records are stored on `D` disks in blocks of `B` records, and the
/// machine has an internal memory of `M` records. All four are powers of
/// two, with `BD ≤ M < N` (paper, Section 1). The paper's lower-case
/// logarithms are exposed as [`Geometry::b`], [`Geometry::d`],
/// [`Geometry::m`], and [`Geometry::n`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Geometry {
    records: usize,
    block: usize,
    disks: usize,
    memory: usize,
}

impl Geometry {
    /// Validates and builds a geometry.
    ///
    /// Requirements (paper, Section 1): `N`, `B`, `D`, `M` are powers of
    /// two; `BD ≤ M` (one parallel I/O must fit in memory); `M < N`
    /// (otherwise everything fits in memory and the model is moot).
    pub fn new(records: usize, block: usize, disks: usize, memory: usize) -> Result<Self> {
        for (name, v) in [
            ("N (records)", records),
            ("B (block)", block),
            ("D (disks)", disks),
            ("M (memory)", memory),
        ] {
            if v == 0 || !v.is_power_of_two() {
                return Err(PdmError::Config(format!(
                    "{name} = {v} must be a nonzero power of two"
                )));
            }
        }
        if block * disks > memory {
            return Err(PdmError::Config(format!(
                "BD = {} exceeds memory M = {memory}",
                block * disks
            )));
        }
        if memory >= records {
            return Err(PdmError::Config(format!(
                "M = {memory} must be smaller than N = {records}"
            )));
        }
        Ok(Geometry {
            records,
            block,
            disks,
            memory,
        })
    }

    /// `N`: total number of records.
    #[inline]
    pub fn records(&self) -> usize {
        self.records
    }

    /// `B`: records per block.
    #[inline]
    pub fn block(&self) -> usize {
        self.block
    }

    /// `D`: number of disks.
    #[inline]
    pub fn disks(&self) -> usize {
        self.disks
    }

    /// `M`: records of memory.
    #[inline]
    pub fn memory(&self) -> usize {
        self.memory
    }

    /// `n = lg N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.records.trailing_zeros() as usize
    }

    /// `b = lg B`.
    #[inline]
    pub fn b(&self) -> usize {
        self.block.trailing_zeros() as usize
    }

    /// `d = lg D`.
    #[inline]
    pub fn d(&self) -> usize {
        self.disks.trailing_zeros() as usize
    }

    /// `m = lg M`.
    #[inline]
    pub fn m(&self) -> usize {
        self.memory.trailing_zeros() as usize
    }

    /// `s = n − (b + d)`: number of stripe bits.
    #[inline]
    pub fn s(&self) -> usize {
        self.n() - self.b() - self.d()
    }

    /// Number of stripes, `N / BD`.
    #[inline]
    pub fn stripes(&self) -> usize {
        self.records / (self.block * self.disks)
    }

    /// Number of blocks in the whole data set, `N / B`.
    #[inline]
    pub fn total_blocks(&self) -> usize {
        self.records / self.block
    }

    /// Number of memoryloads, `N / M`.
    #[inline]
    pub fn memoryloads(&self) -> usize {
        self.records / self.memory
    }

    /// Blocks per memoryload, `M / B`.
    #[inline]
    pub fn blocks_per_memoryload(&self) -> usize {
        self.memory / self.block
    }

    /// Stripes per memoryload, `M / BD`.
    #[inline]
    pub fn stripes_per_memoryload(&self) -> usize {
        self.memory / (self.block * self.disks)
    }

    /// `lg(M/B) = m − b`: the paper's ubiquitous denominator.
    #[inline]
    pub fn lg_mb(&self) -> usize {
        self.m() - self.b()
    }

    /// `lg(N/B) = n − b`.
    #[inline]
    pub fn lg_nb(&self) -> usize {
        self.n() - self.b()
    }

    /// Parallel I/Os in one *pass* (read and write every record once):
    /// `2N/BD` (paper, Table 1 caption).
    #[inline]
    pub fn ios_per_pass(&self) -> usize {
        2 * self.stripes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure1_geometry() {
        // Figure 1: N = 64, B = 2, D = 8 (choose M = 32 to satisfy BD≤M<N).
        let g = Geometry::new(64, 2, 8, 32).unwrap();
        assert_eq!(g.n(), 6);
        assert_eq!(g.b(), 1);
        assert_eq!(g.d(), 3);
        assert_eq!(g.m(), 5);
        assert_eq!(g.stripes(), 4);
        assert_eq!(g.total_blocks(), 32);
        assert_eq!(g.memoryloads(), 2);
        assert_eq!(g.ios_per_pass(), 8);
    }

    #[test]
    fn paper_figure2_geometry() {
        // Figure 2: n = 13, b = 3, d = 4, m = 8 → s = 6.
        let g = Geometry::new(1 << 13, 1 << 3, 1 << 4, 1 << 8).unwrap();
        assert_eq!(g.s(), 6);
        assert_eq!(g.lg_mb(), 5);
        assert_eq!(g.lg_nb(), 10);
        assert_eq!(g.stripes_per_memoryload(), 2);
        assert_eq!(g.blocks_per_memoryload(), 32);
    }

    #[test]
    fn rejects_non_powers_of_two() {
        assert!(Geometry::new(63, 2, 8, 32).is_err());
        assert!(Geometry::new(64, 3, 8, 32).is_err());
        assert!(Geometry::new(64, 2, 7, 32).is_err());
        assert!(Geometry::new(64, 2, 8, 31).is_err());
        assert!(Geometry::new(0, 2, 8, 32).is_err());
    }

    #[test]
    fn rejects_bd_exceeding_m() {
        // BD = 32 > M = 16.
        assert!(Geometry::new(64, 4, 8, 16).is_err());
    }

    #[test]
    fn rejects_memory_not_less_than_n() {
        assert!(Geometry::new(64, 2, 8, 64).is_err());
        assert!(Geometry::new(64, 2, 8, 128).is_err());
    }

    #[test]
    fn accepts_single_disk() {
        let g = Geometry::new(1 << 10, 1 << 2, 1, 1 << 5).unwrap();
        assert_eq!(g.d(), 0);
        assert_eq!(g.stripes(), 1 << 8);
    }

    #[test]
    fn bd_equals_m_allowed() {
        let g = Geometry::new(1 << 8, 1 << 2, 1 << 3, 1 << 5).unwrap();
        assert_eq!(g.memory(), g.block() * g.disks());
    }
}
