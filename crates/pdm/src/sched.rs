//! Fair-shared disk bandwidth for concurrent jobs.
//!
//! One disk array, many tenants: the permutation service admits K
//! concurrent jobs against the same D disks, and something must decide
//! whose parallel I/O goes next. This module is that something — a
//! **deficit round-robin** (DRR) scheduler in the style of dslab's
//! fair-sharing throughput model, split into two layers:
//!
//! * [`FairCore`] — the pure scheduling state machine. Jobs register,
//!   post pending requests (cost = blocks touched, i.e. per-disk
//!   I/Os), and the core decides grants: each *visit* in round-robin
//!   order tops a job's **deficit** up by one `quantum` of blocks, the
//!   job spends deficit while its requests fit, and unspent deficit
//!   carries to its next visit (so a request larger than one quantum
//!   is never starved — the classic DRR guarantee). A job visited with
//!   nothing pending forfeits its deficit: bandwidth is never reserved
//!   for an idle tenant, which keeps the discipline work-conserving.
//!   With a quantum of one memoryload of blocks (`M/B`), K backlogged
//!   jobs interleave at memoryload granularity and each sees `~1/K` of
//!   the aggregate bandwidth; the core is synchronization-free so the
//!   fairness property tests drive it deterministically.
//! * [`FairScheduler`] — the blocking wrapper the live service uses:
//!   an `Arc`-shared condvar queue whose [`SchedHandle::acquire`]
//!   parks the calling job thread until the core grants its request
//!   (or the job is cancelled, which surfaces as
//!   [`PdmError::Cancelled`] and unwinds the job's pass with full
//!   buffer-pool hygiene).
//!
//! Every grant is charged to the owning job's [`JobUsage`] ledger —
//! per-disk block counts in the style of
//! [`crate::timing::TimingTracker`]'s per-disk busy sums, plus an
//! [`IoStats`] broken down read/write and striped/independent — so
//! per-job accounting is *exact*: a job's ledger equals the
//! [`IoStats`] its own [`crate::system::DiskSystem`] reports
//! ([`crate::system::DiskSystem::set_governor`] consults the scheduler
//! on the admission path of every counted operation, before the I/O is
//! serviced or charged).

use crate::error::{PdmError, Result};
use crate::stats::IoStats;
use crate::system::BlockRef;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Identifier of a job admitted to the scheduler (assigned by the
/// service's admission queue; unique for the lifetime of the service).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {}", self.0)
    }
}

/// Per-job charged usage: the scheduler's ledger of what each tenant
/// actually consumed of the shared array.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobUsage {
    /// Parallel I/Os granted to the job, classified exactly as
    /// [`crate::system::DiskSystem`] charges its own [`IoStats`].
    pub io: IoStats,
    /// Blocks transferred per disk (index = disk), the per-disk
    /// accounting analogous to the timing tracker's busy sums.
    pub blocks_per_disk: Vec<u64>,
}

impl JobUsage {
    /// Total blocks charged across all disks.
    pub fn blocks(&self) -> u64 {
        self.io.blocks_read + self.io.blocks_written
    }

    fn charge(&mut self, disks: impl Iterator<Item = usize>, is_read: bool, striped: bool) {
        let mut blocks = 0u64;
        for d in disks {
            if d >= self.blocks_per_disk.len() {
                self.blocks_per_disk.resize(d + 1, 0);
            }
            self.blocks_per_disk[d] += 1;
            blocks += 1;
        }
        if is_read {
            self.io.parallel_reads += 1;
            self.io.blocks_read += blocks;
            if striped {
                self.io.striped_reads += 1;
            }
        } else {
            self.io.parallel_writes += 1;
            self.io.blocks_written += blocks;
            if striped {
                self.io.striped_writes += 1;
            }
        }
    }
}

/// Per-job scheduling state inside the core.
#[derive(Debug)]
struct JobSched {
    /// Unspent grant budget, in blocks. Topped up by one quantum per
    /// round-robin visit; carries across visits while the job stays
    /// backlogged (the "deficit" of deficit round-robin).
    deficit: u64,
    /// The job's one outstanding request, in blocks (a job thread
    /// issues parallel I/Os one at a time, so at most one is pending).
    pending: Option<u64>,
    /// Set by [`FairCore::cancel`]; the next request (or the pending
    /// one, once its thread observes the flag) fails.
    cancelled: bool,
    /// Everything granted so far.
    usage: JobUsage,
}

/// The pure deficit-round-robin state machine (see the module docs).
/// Deterministic and synchronization-free: the property tests drive it
/// directly, the live service wraps it in [`FairScheduler`].
#[derive(Debug)]
pub struct FairCore {
    quantum: u64,
    jobs: BTreeMap<u64, JobSched>,
    /// Round-robin visiting order (registration order).
    order: Vec<u64>,
    /// The job currently holding the visit, if any.
    turn: Option<u64>,
}

impl FairCore {
    /// A core granting `quantum` blocks of budget per round-robin
    /// visit. One memoryload of blocks (`M/B`) gives the
    /// memoryload-granular interleave the service uses; the quantum is
    /// clamped to at least 1.
    pub fn new(quantum: u64) -> Self {
        FairCore {
            quantum: quantum.max(1),
            jobs: BTreeMap::new(),
            order: Vec::new(),
            turn: None,
        }
    }

    /// The per-visit budget top-up, in blocks.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Number of registered jobs.
    pub fn registered(&self) -> usize {
        self.jobs.len()
    }

    /// Adds a job to the round-robin ring with an empty ledger and zero
    /// deficit. Registering an already-registered job is a no-op.
    pub fn register(&mut self, job: JobId) {
        self.jobs.entry(job.0).or_insert_with(|| {
            self.order.push(job.0);
            JobSched {
                deficit: 0,
                pending: None,
                cancelled: false,
                usage: JobUsage::default(),
            }
        });
    }

    /// Removes a job, returning its final ledger. Any pending request
    /// is discarded; the visit moves on.
    pub fn unregister(&mut self, job: JobId) -> Option<JobUsage> {
        let state = self.jobs.remove(&job.0)?;
        self.order.retain(|&j| j != job.0);
        if self.turn == Some(job.0) {
            self.turn = None;
        }
        Some(state.usage)
    }

    /// Marks a job cancelled; its pending and future requests are
    /// refused (the blocking wrapper surfaces
    /// [`PdmError::Cancelled`]).
    pub fn cancel(&mut self, job: JobId) {
        if let Some(j) = self.jobs.get_mut(&job.0) {
            j.cancelled = true;
        }
    }

    /// Whether a job has been cancelled.
    pub fn is_cancelled(&self, job: JobId) -> bool {
        self.jobs.get(&job.0).is_some_and(|j| j.cancelled)
    }

    /// Whether a job is registered.
    pub fn contains(&self, job: JobId) -> bool {
        self.jobs.contains_key(&job.0)
    }

    /// Posts the job's one outstanding request for `blocks` per-disk
    /// I/Os. Idempotent while the request is pending.
    pub fn request(&mut self, job: JobId, blocks: u64) {
        if let Some(j) = self.jobs.get_mut(&job.0) {
            j.pending = Some(blocks);
        }
    }

    /// Withdraws the job's pending request (cancellation path).
    pub fn clear_request(&mut self, job: JobId) {
        if let Some(j) = self.jobs.get_mut(&job.0) {
            j.pending = None;
        }
    }

    /// Decides whether `job`'s pending request is granted *now* under
    /// the DRR discipline. On `true` the request is consumed and its
    /// cost deducted from the job's deficit; on `false` the caller
    /// must wait (another job's grant is ready, or nothing is
    /// pending). Any caller may invoke this for its own job after any
    /// state change — the visit bookkeeping is advanced lazily inside.
    pub fn try_grant(&mut self, job: JobId) -> bool {
        loop {
            // Establish a valid visit: the turn must rest on a job
            // with a pending request. A turn job that went idle
            // forfeits its deficit (work-conserving, no reservation).
            let turn_pending = self
                .turn
                .and_then(|t| self.jobs.get(&t))
                .is_some_and(|j| j.pending.is_some());
            if !turn_pending && !self.advance(true) {
                return false; // nothing pending anywhere
            }
            let t = self.turn.expect("advance established a turn");
            let js = self.jobs.get_mut(&t).expect("turn job is registered");
            let cost = js.pending.expect("turn job has a pending request");
            if js.deficit >= cost {
                if t != job.0 {
                    return false; // someone else's grant is ready
                }
                js.deficit -= cost;
                js.pending = None;
                return true;
            }
            // Visit over: the deficit carries (DRR's no-starvation
            // guarantee for requests larger than one quantum) and the
            // next backlogged job gets the quantum.
            self.advance(false);
        }
    }

    /// Moves the visit to the next backlogged job after the current
    /// turn, topping its deficit up by one quantum. `reset_old` zeroes
    /// the outgoing job's deficit (used when it was skipped for being
    /// idle). Returns `false` when no job has a pending request.
    fn advance(&mut self, reset_old: bool) -> bool {
        if reset_old {
            if let Some(j) = self.turn.and_then(|t| self.jobs.get_mut(&t)) {
                j.deficit = 0;
            }
        }
        if self.order.is_empty() {
            self.turn = None;
            return false;
        }
        let start = match self
            .turn
            .and_then(|t| self.order.iter().position(|&j| j == t))
        {
            Some(pos) => pos + 1,
            None => 0,
        };
        for i in 0..self.order.len() {
            let cand = self.order[(start + i) % self.order.len()];
            if self.jobs[&cand].pending.is_some() {
                self.turn = Some(cand);
                let j = self.jobs.get_mut(&cand).expect("candidate is registered");
                j.deficit = j.deficit.saturating_add(self.quantum);
                return true;
            }
        }
        self.turn = None;
        false
    }

    /// Charges a granted request to the job's ledger. The blocking
    /// wrapper calls this with the real disk list at grant time; the
    /// property tests call it to mirror what they granted.
    pub fn charge(
        &mut self,
        job: JobId,
        disks: impl Iterator<Item = usize>,
        is_read: bool,
        striped: bool,
    ) {
        if let Some(j) = self.jobs.get_mut(&job.0) {
            j.usage.charge(disks, is_read, striped);
        }
    }

    /// The job's charged usage so far.
    pub fn usage(&self, job: JobId) -> Option<&JobUsage> {
        self.jobs.get(&job.0).map(|j| &j.usage)
    }

    /// Snapshot of every registered job's ledger.
    pub fn usages(&self) -> Vec<(JobId, JobUsage)> {
        self.jobs
            .iter()
            .map(|(&id, j)| (JobId(id), j.usage.clone()))
            .collect()
    }
}

/// The blocking fair scheduler shared by the service's job threads:
/// [`FairCore`] behind a mutex, with a condvar waking parked
/// requesters whenever a grant, cancellation, or membership change
/// could unblock them.
#[derive(Debug)]
pub struct FairScheduler {
    core: Mutex<FairCore>,
    cv: Condvar,
}

impl FairScheduler {
    /// A shareable scheduler granting `quantum` blocks per visit.
    pub fn new(quantum: u64) -> Arc<FairScheduler> {
        Arc::new(FairScheduler {
            core: Mutex::new(FairCore::new(quantum)),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, FairCore> {
        self.core.lock().expect("scheduler lock poisoned")
    }

    /// Registers a job and returns the handle its
    /// [`crate::system::DiskSystem`] installs as governor
    /// ([`crate::system::DiskSystem::set_governor`]).
    pub fn register(self: &Arc<Self>, job: JobId) -> SchedHandle {
        self.lock().register(job);
        self.cv.notify_all();
        SchedHandle {
            sched: Arc::clone(self),
            job,
        }
    }

    /// Removes a job (idempotent), returning its final ledger and
    /// waking anyone its departure unblocks.
    pub fn unregister(&self, job: JobId) -> Option<JobUsage> {
        let usage = self.lock().unregister(job);
        self.cv.notify_all();
        usage
    }

    /// Cancels a job: its blocked or next [`SchedHandle::acquire`]
    /// fails with [`PdmError::Cancelled`], which unwinds the job's
    /// pass through the engine's error path (buffers recycled).
    pub fn cancel(&self, job: JobId) {
        self.lock().cancel(job);
        self.cv.notify_all();
    }

    /// The job's charged usage so far (`None` once unregistered).
    pub fn usage(&self, job: JobId) -> Option<JobUsage> {
        self.lock().usage(job).cloned()
    }

    /// Snapshot of every registered job's ledger.
    pub fn usages(&self) -> Vec<(JobId, JobUsage)> {
        self.lock().usages()
    }

    /// Number of registered jobs.
    pub fn registered(&self) -> usize {
        self.lock().registered()
    }
}

/// One job's handle onto the shared [`FairScheduler`]: the governor a
/// per-job [`crate::system::DiskSystem`] consults before every counted
/// parallel I/O.
#[derive(Clone, Debug)]
pub struct SchedHandle {
    sched: Arc<FairScheduler>,
    job: JobId,
}

impl SchedHandle {
    /// The job this handle charges.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The scheduler this handle belongs to.
    pub fn scheduler(&self) -> &Arc<FairScheduler> {
        &self.sched
    }

    /// Blocks until the scheduler grants this job a parallel I/O over
    /// `refs`, then charges it to the job's ledger. Returns
    /// [`PdmError::Cancelled`] if the job is cancelled before the
    /// grant; a handle whose job is no longer registered passes
    /// through ungoverned (teardown races resolve to progress, not
    /// deadlock).
    pub fn acquire(&self, refs: &[BlockRef], is_read: bool, striped: bool) -> Result<()> {
        let cost = refs.len() as u64;
        if cost == 0 {
            return Ok(());
        }
        let mut core = self.sched.lock();
        if !core.contains(self.job) {
            return Ok(());
        }
        if core.is_cancelled(self.job) {
            drop(core);
            self.sched.cv.notify_all();
            return Err(PdmError::Cancelled { job: self.job.0 });
        }
        // Single-tenant fast path: round-robin over one job always
        // grants immediately, so skip the request/grant/notify
        // machinery (which costs a condvar broadcast per parallel I/O)
        // and just charge the ledger. Keeps the lone-tenant overhead
        // near zero; contended tenants take the full DRR path below.
        if core.registered() == 1 {
            core.charge(self.job, refs.iter().map(|r| r.disk), is_read, striped);
            return Ok(());
        }
        core.request(self.job, cost);
        loop {
            if core.is_cancelled(self.job) {
                core.clear_request(self.job);
                drop(core);
                self.sched.cv.notify_all();
                return Err(PdmError::Cancelled { job: self.job.0 });
            }
            if core.try_grant(self.job) {
                core.charge(self.job, refs.iter().map(|r| r.disk), is_read, striped);
                drop(core);
                // The grant may have moved the visit; wake the next
                // eligible requester.
                self.sched.cv.notify_all();
                return Ok(());
            }
            core = self.sched.cv.wait(core).expect("scheduler lock poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(core: &mut FairCore, job: JobId, cost: u64) -> bool {
        core.request(job, cost);
        if core.try_grant(job) {
            core.charge(job, 0..cost as usize, true, false);
            true
        } else {
            core.clear_request(job);
            false
        }
    }

    #[test]
    fn single_job_is_always_granted() {
        let mut core = FairCore::new(8);
        core.register(JobId(1));
        for _ in 0..100 {
            assert!(drain(&mut core, JobId(1), 3));
        }
        assert_eq!(core.usage(JobId(1)).unwrap().blocks(), 300);
    }

    #[test]
    fn two_backlogged_jobs_alternate_within_a_quantum() {
        let mut core = FairCore::new(4);
        core.register(JobId(1));
        core.register(JobId(2));
        // Both always backlogged with cost-2 requests: grants must
        // alternate in runs of one quantum (two grants) each.
        core.request(JobId(1), 2);
        core.request(JobId(2), 2);
        let mut grants = Vec::new();
        for _ in 0..16 {
            for id in [JobId(1), JobId(2)] {
                if core.try_grant(id) {
                    grants.push(id.0);
                    core.request(id, 2); // immediately backlogged again
                }
            }
        }
        let ones = grants.iter().filter(|&&g| g == 1).count();
        let twos = grants.iter().filter(|&&g| g == 2).count();
        assert!(
            (ones as i64 - twos as i64).unsigned_abs() * 2 <= core.quantum(),
            "grants {grants:?} drifted beyond one quantum"
        );
    }

    #[test]
    fn oversized_request_is_not_starved() {
        let mut core = FairCore::new(4);
        core.register(JobId(1));
        core.register(JobId(2));
        // Job 1 wants 10 blocks per request (2.5 quanta); job 2 wants
        // 1. The deficit must accumulate across visits until job 1's
        // request fits — it can lag, but never forever.
        core.request(JobId(1), 10);
        core.request(JobId(2), 1);
        let mut big_grants = 0;
        for _ in 0..100 {
            if core.try_grant(JobId(1)) {
                big_grants += 1;
                core.request(JobId(1), 10);
            }
            if core.try_grant(JobId(2)) {
                core.request(JobId(2), 1);
            }
        }
        assert!(big_grants >= 10, "large requests starved: {big_grants}");
    }

    #[test]
    fn idle_job_forfeits_deficit_and_blocks_nobody() {
        let mut core = FairCore::new(4);
        core.register(JobId(1));
        core.register(JobId(2));
        // Job 2 never requests; job 1 must be granted every time.
        for _ in 0..50 {
            assert!(drain(&mut core, JobId(1), 4));
        }
        assert_eq!(core.usage(JobId(2)).unwrap().blocks(), 0);
    }

    #[test]
    fn cancel_refuses_and_unregister_returns_ledger() {
        let mut core = FairCore::new(4);
        core.register(JobId(7));
        assert!(drain(&mut core, JobId(7), 2));
        core.cancel(JobId(7));
        assert!(core.is_cancelled(JobId(7)));
        let usage = core.unregister(JobId(7)).unwrap();
        assert_eq!(usage.blocks(), 2);
        assert_eq!(usage.io.parallel_reads, 1);
        assert!(core.unregister(JobId(7)).is_none());
    }

    #[test]
    fn ledger_classifies_reads_writes_striped() {
        let mut u = JobUsage::default();
        u.charge(0..4, true, true);
        u.charge(0..2, false, false);
        assert_eq!(u.io.parallel_reads, 1);
        assert_eq!(u.io.striped_reads, 1);
        assert_eq!(u.io.parallel_writes, 1);
        assert_eq!(u.io.striped_writes, 0);
        assert_eq!(u.io.blocks_read, 4);
        assert_eq!(u.io.blocks_written, 2);
        assert_eq!(u.blocks_per_disk, vec![2, 2, 1, 1]);
    }
}
