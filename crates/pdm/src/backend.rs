//! Storage backends: one `DiskUnit` per simulated disk.
//!
//! Two implementations:
//! * [`MemDisk`] — blocks held in a flat `Vec`; the default for
//!   experiments (the paper's cost model counts operations, not bytes).
//! * [`FileDisk`] — one preallocated file per disk driven by
//!   *positional* I/O (`read_exact_at`/`write_all_at`): one system
//!   call per block, no internal seek state, serialization through a
//!   reusable byte-staging buffer owned by the unit. This is the
//!   engine target for end-to-end realism — each
//!   [`crate::parallel::DiskPool`] worker owns its `FileDisk`, so a
//!   threaded [`crate::engine::PassEngine`] run overlaps real file
//!   reads of memoryload *k+1* with the in-RAM permute of *k*.
//!
//! A unit does not know its position in the disk array; out-of-range
//! errors therefore carry a `usize::MAX` placeholder disk index that
//! the [`crate::system::DiskSystem`] (or the spawn-per-op helpers in
//! [`crate::parallel`]) patches via [`PdmError::with_disk`] before the
//! error reaches a caller.

use crate::error::{PdmError, Result};
use crate::record::ByteRecord;
use std::fs::{File, OpenOptions};
use std::path::Path;

/// A single disk that stores fixed-size blocks of records of type `R`.
///
/// A `DiskUnit` knows nothing about striping or parallel I/O; the
/// [`crate::system::DiskSystem`] enforces the model on top of a vector
/// of these.
pub trait DiskUnit<R>: Send {
    /// Number of block slots on this disk.
    fn slots(&self) -> usize;
    /// Records per block.
    fn block(&self) -> usize;
    /// Reads block `slot` into `out` (`out.len() == block()`).
    fn read(&mut self, slot: usize, out: &mut [R]) -> Result<()>;
    /// Writes `data` (`data.len() == block()`) to block `slot`.
    fn write(&mut self, slot: usize, data: &[R]) -> Result<()>;
}

/// An in-memory disk: `slots * block` records in one allocation.
pub struct MemDisk<R> {
    block: usize,
    data: Vec<R>,
}

impl<R: Copy + Default> MemDisk<R> {
    /// A zeroed disk with the given number of block slots.
    pub fn new(block: usize, slots: usize) -> Self {
        MemDisk {
            block,
            data: vec![R::default(); block * slots],
        }
    }
}

impl<R: Copy + Default + Send> DiskUnit<R> for MemDisk<R> {
    fn slots(&self) -> usize {
        self.data.len() / self.block
    }

    fn block(&self) -> usize {
        self.block
    }

    fn read(&mut self, slot: usize, out: &mut [R]) -> Result<()> {
        let start = slot * self.block;
        if start + self.block > self.data.len() {
            return Err(PdmError::OutOfRange {
                disk: usize::MAX,
                slot,
                slots_per_disk: self.slots(),
            });
        }
        out.copy_from_slice(&self.data[start..start + self.block]);
        Ok(())
    }

    fn write(&mut self, slot: usize, data: &[R]) -> Result<()> {
        let start = slot * self.block;
        if start + self.block > self.data.len() {
            return Err(PdmError::OutOfRange {
                disk: usize::MAX,
                slot,
                slots_per_disk: self.slots(),
            });
        }
        self.data[start..start + self.block].copy_from_slice(data);
        Ok(())
    }
}

/// A file-backed disk: block `i` lives at byte offset
/// `i * block * R::BYTES` in a single preallocated file.
///
/// Transfers use positional I/O — one `pread`/`pwrite` per block, no
/// seek state — and serialize through `staging`, a block-sized byte
/// buffer allocated once at creation, so steady-state operation
/// performs **no heap allocation** (the file-path half of the engine's
/// allocation-free guarantee; see `crates/pdm/tests/engine_alloc.rs`).
///
/// The record width is pinned at [`FileDisk::create`] time; every
/// subsequent access re-checks it and rejects a mismatched record type
/// with [`PdmError::RecordSize`] instead of slicing the on-disk bytes
/// at the wrong stride.
pub struct FileDisk {
    block: usize,
    slots: usize,
    record_bytes: usize,
    file: File,
    /// Reusable serialization buffer, exactly one block of bytes.
    staging: Vec<u8>,
}

impl FileDisk {
    /// Creates (or truncates) the file at `path` sized for
    /// `slots * block` records of `R`.
    pub fn create<R: ByteRecord>(path: &Path, block: usize, slots: usize) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| PdmError::Io(format!("create {}: {e}", path.display())))?;
        file.set_len((block * slots * R::BYTES) as u64)
            .map_err(|e| PdmError::Io(format!("set_len {}: {e}", path.display())))?;
        Ok(FileDisk {
            block,
            slots,
            record_bytes: R::BYTES,
            file,
            staging: vec![0u8; block * R::BYTES],
        })
    }

    /// The serialized record width this disk was created with.
    pub fn record_bytes(&self) -> usize {
        self.record_bytes
    }

    /// Admission checks shared by read and write: the record type must
    /// match the creation-time geometry and the slot must exist.
    fn admit<R: ByteRecord>(&self, slot: usize) -> Result<()> {
        if R::BYTES != self.record_bytes {
            return Err(PdmError::RecordSize {
                expected: self.record_bytes,
                actual: R::BYTES,
            });
        }
        if slot >= self.slots {
            return Err(PdmError::OutOfRange {
                disk: usize::MAX,
                slot,
                slots_per_disk: self.slots,
            });
        }
        Ok(())
    }

    fn byte_offset(&self, slot: usize) -> u64 {
        (slot * self.block * self.record_bytes) as u64
    }

    #[cfg(unix)]
    fn read_staging_at(&mut self, off: u64) -> std::io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(&mut self.staging, off)
    }

    #[cfg(unix)]
    fn write_staging_at(&mut self, off: u64) -> std::io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(&self.staging, off)
    }

    #[cfg(not(unix))]
    fn read_staging_at(&mut self, off: u64) -> std::io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(&mut self.staging)
    }

    #[cfg(not(unix))]
    fn write_staging_at(&mut self, off: u64) -> std::io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(&self.staging)
    }
}

impl<R: ByteRecord + Send> DiskUnit<R> for FileDisk {
    fn slots(&self) -> usize {
        self.slots
    }

    fn block(&self) -> usize {
        self.block
    }

    fn read(&mut self, slot: usize, out: &mut [R]) -> Result<()> {
        // The trait contract fixes the slice at one block; enforce it
        // as loudly as MemDisk's copy_from_slice would, rather than
        // letting zip() silently truncate the transfer.
        assert_eq!(out.len(), self.block, "read requires a full block");
        self.admit::<R>(slot)?;
        self.read_staging_at(self.byte_offset(slot))
            .map_err(|e| PdmError::Io(format!("read_at slot {slot}: {e}")))?;
        for (chunk, r) in self.staging.chunks_exact(self.record_bytes).zip(out) {
            *r = R::from_bytes(chunk);
        }
        Ok(())
    }

    fn write(&mut self, slot: usize, data: &[R]) -> Result<()> {
        // A short `data` would leave stale staging bytes in the block's
        // tail on disk; reject it like MemDisk does.
        assert_eq!(data.len(), self.block, "write requires a full block");
        self.admit::<R>(slot)?;
        for (chunk, r) in self.staging.chunks_exact_mut(self.record_bytes).zip(data) {
            r.to_bytes(chunk);
        }
        self.write_staging_at(self.byte_offset(slot))
            .map_err(|e| PdmError::Io(format!("write_at slot {slot}: {e}")))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_disk_round_trip() {
        let mut d: MemDisk<u64> = MemDisk::new(4, 8);
        assert_eq!(DiskUnit::<u64>::slots(&d), 8);
        d.write(3, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u64; 4];
        d.read(3, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
        // Untouched slot reads back zeros.
        d.read(0, &mut out).unwrap();
        assert_eq!(out, [0, 0, 0, 0]);
    }

    #[test]
    fn mem_disk_out_of_range() {
        let mut d: MemDisk<u64> = MemDisk::new(4, 2);
        let mut out = [0u64; 4];
        assert!(d.read(2, &mut out).is_err());
        assert!(d.write(5, &[0; 4]).is_err());
    }

    #[test]
    fn file_disk_round_trip() {
        let dir = crate::tempdir::TempDir::new("pdm-test");
        let path = dir.path().join("disk0.bin");
        let mut d = FileDisk::create::<u64>(&path, 4, 4).unwrap();
        d.write(2, &[9u64, 8, 7, 6]).unwrap();
        d.write(0, &[1u64, 2, 3, 4]).unwrap();
        let mut out = [0u64; 4];
        DiskUnit::<u64>::read(&mut d, 2, &mut out).unwrap();
        assert_eq!(out, [9, 8, 7, 6]);
        DiskUnit::<u64>::read(&mut d, 0, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
        // Out-of-order access needs no seek bookkeeping: positional
        // reads hit the right offset regardless of history.
        DiskUnit::<u64>::read(&mut d, 2, &mut out).unwrap();
        assert_eq!(out, [9, 8, 7, 6]);
    }

    #[test]
    fn file_disk_out_of_range() {
        let dir = crate::tempdir::TempDir::new("pdm-test-oor");
        let path = dir.path().join("disk0.bin");
        let mut d = FileDisk::create::<u64>(&path, 2, 2).unwrap();
        let mut out = [0u64; 2];
        assert!(DiskUnit::<u64>::read(&mut d, 2, &mut out).is_err());
    }

    /// Regression test for the record-geometry corruption bug: a
    /// `FileDisk` created for one record width used to accept any
    /// other `ByteRecord` type, slicing the on-disk bytes at the
    /// stored stride while `from_bytes`/`to_bytes` assumed the new
    /// type's width — silent corruption (narrower records) or an
    /// out-of-bounds panic (wider ones). Both must now be a typed
    /// error, with the data untouched.
    #[test]
    fn file_disk_rejects_record_size_mismatch() {
        use crate::record::TaggedRecord;
        let dir = crate::tempdir::TempDir::new("pdm-test-recsize");
        let path = dir.path().join("disk0.bin");
        let mut d = FileDisk::create::<u64>(&path, 4, 4).unwrap();
        assert_eq!(d.record_bytes(), 8);
        DiskUnit::<u64>::write(&mut d, 1, &[10, 11, 12, 13]).unwrap();

        // Narrower record type (u32: 4 bytes vs the stored 8).
        let mut narrow = [0u32; 4];
        let err = DiskUnit::<u32>::read(&mut d, 1, &mut narrow).unwrap_err();
        assert_eq!(
            err,
            PdmError::RecordSize {
                expected: 8,
                actual: 4
            }
        );
        let err = DiskUnit::<u32>::write(&mut d, 1, &[0u32; 4]).unwrap_err();
        assert!(matches!(err, PdmError::RecordSize { .. }));

        // Wider record type (TaggedRecord: 16 bytes) — the old code
        // sliced past the staging buffer here.
        let mut wide = [TaggedRecord::default(); 4];
        let err = DiskUnit::<TaggedRecord>::read(&mut d, 1, &mut wide).unwrap_err();
        assert_eq!(
            err,
            PdmError::RecordSize {
                expected: 8,
                actual: 16
            }
        );

        // The rejected writes must not have touched the data.
        let mut out = [0u64; 4];
        DiskUnit::<u64>::read(&mut d, 1, &mut out).unwrap();
        assert_eq!(out, [10, 11, 12, 13]);
    }

    /// A short write must fail loudly (like MemDisk), never flush
    /// stale staging-buffer bytes into the block's tail on disk.
    #[test]
    #[should_panic(expected = "full block")]
    fn file_disk_rejects_short_write() {
        let dir = crate::tempdir::TempDir::new("pdm-test-short");
        let path = dir.path().join("disk0.bin");
        let mut d = FileDisk::create::<u64>(&path, 4, 2).unwrap();
        let _ = DiskUnit::<u64>::write(&mut d, 0, &[1u64, 2]);
    }

    /// The placeholder disk index a unit reports is patched to the real
    /// one by the system/parallel layers (see `PdmError::with_disk`).
    #[test]
    fn out_of_range_placeholder_is_patchable() {
        let mut d: MemDisk<u64> = MemDisk::new(4, 2);
        let mut out = [0u64; 4];
        let err = d.read(7, &mut out).unwrap_err();
        assert!(matches!(err, PdmError::OutOfRange { disk, .. } if disk == usize::MAX));
        let err = err.with_disk(3);
        assert!(matches!(
            err,
            PdmError::OutOfRange {
                disk: 3,
                slot: 7,
                ..
            }
        ));
    }
}
