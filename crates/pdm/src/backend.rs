//! Storage backends: one `DiskUnit` per simulated disk.
//!
//! Two implementations:
//! * [`MemDisk`] — blocks held in a flat `Vec`; the default for
//!   experiments (the paper's cost model counts operations, not bytes).
//! * [`FileDisk`] — one file per disk with real `read_at`/`write_at`
//!   system calls, for end-to-end realism and the threaded-service
//!   benchmarks.

use crate::error::{PdmError, Result};
use crate::record::ByteRecord;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// A single disk that stores fixed-size blocks of records of type `R`.
///
/// A `DiskUnit` knows nothing about striping or parallel I/O; the
/// [`crate::system::DiskSystem`] enforces the model on top of a vector
/// of these.
pub trait DiskUnit<R>: Send {
    /// Number of block slots on this disk.
    fn slots(&self) -> usize;
    /// Records per block.
    fn block(&self) -> usize;
    /// Reads block `slot` into `out` (`out.len() == block()`).
    fn read(&mut self, slot: usize, out: &mut [R]) -> Result<()>;
    /// Writes `data` (`data.len() == block()`) to block `slot`.
    fn write(&mut self, slot: usize, data: &[R]) -> Result<()>;
}

/// An in-memory disk: `slots * block` records in one allocation.
pub struct MemDisk<R> {
    block: usize,
    data: Vec<R>,
}

impl<R: Copy + Default> MemDisk<R> {
    /// A zeroed disk with the given number of block slots.
    pub fn new(block: usize, slots: usize) -> Self {
        MemDisk {
            block,
            data: vec![R::default(); block * slots],
        }
    }
}

impl<R: Copy + Default + Send> DiskUnit<R> for MemDisk<R> {
    fn slots(&self) -> usize {
        self.data.len() / self.block
    }

    fn block(&self) -> usize {
        self.block
    }

    fn read(&mut self, slot: usize, out: &mut [R]) -> Result<()> {
        let start = slot * self.block;
        if start + self.block > self.data.len() {
            return Err(PdmError::OutOfRange {
                disk: usize::MAX,
                slot,
                slots_per_disk: self.slots(),
            });
        }
        out.copy_from_slice(&self.data[start..start + self.block]);
        Ok(())
    }

    fn write(&mut self, slot: usize, data: &[R]) -> Result<()> {
        let start = slot * self.block;
        if start + self.block > self.data.len() {
            return Err(PdmError::OutOfRange {
                disk: usize::MAX,
                slot,
                slots_per_disk: self.slots(),
            });
        }
        self.data[start..start + self.block].copy_from_slice(data);
        Ok(())
    }
}

/// A file-backed disk: block `i` lives at byte offset
/// `i * block * R::BYTES` in a single preallocated file.
pub struct FileDisk {
    block: usize,
    slots: usize,
    record_bytes: usize,
    file: File,
}

impl FileDisk {
    /// Creates (or truncates) the file at `path` sized for
    /// `slots * block` records of `R`.
    pub fn create<R: ByteRecord>(path: &Path, block: usize, slots: usize) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| PdmError::Io(format!("create {}: {e}", path.display())))?;
        file.set_len((block * slots * R::BYTES) as u64)
            .map_err(|e| PdmError::Io(format!("set_len {}: {e}", path.display())))?;
        Ok(FileDisk {
            block,
            slots,
            record_bytes: R::BYTES,
            file,
        })
    }

    fn seek_to(&mut self, slot: usize) -> Result<()> {
        let off = (slot * self.block * self.record_bytes) as u64;
        self.file
            .seek(SeekFrom::Start(off))
            .map_err(|e| PdmError::Io(format!("seek: {e}")))?;
        Ok(())
    }
}

impl<R: ByteRecord + Send> DiskUnit<R> for FileDisk {
    fn slots(&self) -> usize {
        self.slots
    }

    fn block(&self) -> usize {
        self.block
    }

    fn read(&mut self, slot: usize, out: &mut [R]) -> Result<()> {
        if slot >= self.slots {
            return Err(PdmError::OutOfRange {
                disk: usize::MAX,
                slot,
                slots_per_disk: self.slots,
            });
        }
        self.seek_to(slot)?;
        let mut buf = vec![0u8; self.block * self.record_bytes];
        self.file
            .read_exact(&mut buf)
            .map_err(|e| PdmError::Io(format!("read: {e}")))?;
        for (i, r) in out.iter_mut().enumerate() {
            *r = R::from_bytes(&buf[i * self.record_bytes..]);
        }
        Ok(())
    }

    fn write(&mut self, slot: usize, data: &[R]) -> Result<()> {
        if slot >= self.slots {
            return Err(PdmError::OutOfRange {
                disk: usize::MAX,
                slot,
                slots_per_disk: self.slots,
            });
        }
        self.seek_to(slot)?;
        let mut buf = vec![0u8; self.block * self.record_bytes];
        for (i, r) in data.iter().enumerate() {
            r.to_bytes(&mut buf[i * self.record_bytes..(i + 1) * self.record_bytes]);
        }
        self.file
            .write_all(&buf)
            .map_err(|e| PdmError::Io(format!("write: {e}")))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_disk_round_trip() {
        let mut d: MemDisk<u64> = MemDisk::new(4, 8);
        assert_eq!(DiskUnit::<u64>::slots(&d), 8);
        d.write(3, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u64; 4];
        d.read(3, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
        // Untouched slot reads back zeros.
        d.read(0, &mut out).unwrap();
        assert_eq!(out, [0, 0, 0, 0]);
    }

    #[test]
    fn mem_disk_out_of_range() {
        let mut d: MemDisk<u64> = MemDisk::new(4, 2);
        let mut out = [0u64; 4];
        assert!(d.read(2, &mut out).is_err());
        assert!(d.write(5, &[0; 4]).is_err());
    }

    #[test]
    fn file_disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("pdm-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk0.bin");
        let mut d = FileDisk::create::<u64>(&path, 4, 4).unwrap();
        d.write(2, &[9u64, 8, 7, 6]).unwrap();
        d.write(0, &[1u64, 2, 3, 4]).unwrap();
        let mut out = [0u64; 4];
        DiskUnit::<u64>::read(&mut d, 2, &mut out).unwrap();
        assert_eq!(out, [9, 8, 7, 6]);
        DiskUnit::<u64>::read(&mut d, 0, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_disk_out_of_range() {
        let dir = std::env::temp_dir().join(format!("pdm-test-oor-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk0.bin");
        let mut d = FileDisk::create::<u64>(&path, 2, 2).unwrap();
        let mut out = [0u64; 2];
        assert!(DiskUnit::<u64>::read(&mut d, 2, &mut out).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
