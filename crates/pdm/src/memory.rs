//! The M-record internal memory and in-memory permutation.
//!
//! The model allows arbitrary computation on records once they are in
//! memory; the only constraint is capacity `M`. [`Memory`] enforces the
//! capacity, and [`permute_in_place`] rearranges a buffer by
//! cycle-following so that no second M-record buffer is needed — the
//! permutation uses O(M) *bits* of scratch, honouring the model.

/// An internal memory holding at most `capacity` records.
#[derive(Clone, Debug)]
pub struct Memory<R> {
    capacity: usize,
    data: Vec<R>,
}

impl<R: Copy + Default> Memory<R> {
    /// An empty memory with the given record capacity (the model's `M`).
    pub fn new(capacity: usize) -> Self {
        Memory {
            capacity,
            data: Vec::new(),
        }
    }

    /// The record capacity `M`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently resident.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no records are resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Loads records, replacing the current contents.
    ///
    /// # Panics
    /// Panics if the load exceeds capacity — algorithms that trip this
    /// have violated the model.
    pub fn load(&mut self, records: Vec<R>) {
        assert!(
            records.len() <= self.capacity,
            "memory overflow: loading {} records into capacity {}",
            records.len(),
            self.capacity
        );
        self.data = records;
    }

    /// Appends records (e.g. one block at a time).
    ///
    /// # Panics
    /// Panics if capacity would be exceeded.
    pub fn extend_from(&mut self, records: &[R]) {
        assert!(
            self.data.len() + records.len() <= self.capacity,
            "memory overflow: {} + {} exceeds capacity {}",
            self.data.len(),
            records.len(),
            self.capacity
        );
        self.data.extend_from_slice(records);
    }

    /// Immutable view of the resident records.
    pub fn as_slice(&self) -> &[R] {
        &self.data
    }

    /// Mutable view of the resident records.
    pub fn as_mut_slice(&mut self) -> &mut [R] {
        &mut self.data
    }

    /// Removes and returns all resident records.
    pub fn take(&mut self) -> Vec<R> {
        std::mem::take(&mut self.data)
    }
}

/// Rearranges `data` so that the record at index `i` moves to index
/// `target(i)`, where `target` is a bijection on `0..data.len()`.
///
/// Uses cycle-following with a visited bitmap: O(len) time, O(len) bits
/// of scratch, no second record buffer.
///
/// # Panics
/// Panics (in debug builds) if `target` is not a bijection.
pub fn permute_in_place<R: Copy>(data: &mut [R], target: impl Fn(usize) -> usize) {
    let n = data.len();
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        let mut carried = data[start];
        let mut dst = target(start);
        // Walk the cycle containing `start`, depositing each carried
        // record at its target and picking up the displaced one.
        while dst != start {
            debug_assert!(dst < n, "target {dst} out of range");
            debug_assert!(!visited[dst], "target function is not a bijection");
            visited[dst] = true;
            std::mem::swap(&mut carried, &mut data[dst]);
            dst = target(dst);
        }
        data[start] = carried;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_take() {
        let mut mem: Memory<u64> = Memory::new(8);
        mem.load(vec![1, 2, 3]);
        assert_eq!(mem.len(), 3);
        assert_eq!(mem.as_slice(), &[1, 2, 3]);
        let out = mem.take();
        assert_eq!(out, vec![1, 2, 3]);
        assert!(mem.is_empty());
    }

    #[test]
    #[should_panic(expected = "memory overflow")]
    fn load_over_capacity_panics() {
        let mut mem: Memory<u64> = Memory::new(2);
        mem.load(vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "memory overflow")]
    fn extend_over_capacity_panics() {
        let mut mem: Memory<u64> = Memory::new(4);
        mem.extend_from(&[1, 2, 3]);
        mem.extend_from(&[4, 5]);
    }

    #[test]
    fn permute_identity() {
        let mut v = [10, 20, 30, 40];
        permute_in_place(&mut v, |i| i);
        assert_eq!(v, [10, 20, 30, 40]);
    }

    #[test]
    fn permute_rotation() {
        let mut v = [0, 1, 2, 3, 4];
        // Record at i moves to i+1 mod 5.
        permute_in_place(&mut v, |i| (i + 1) % 5);
        assert_eq!(v, [4, 0, 1, 2, 3]);
    }

    #[test]
    fn permute_reversal() {
        let mut v: Vec<u32> = (0..16).collect();
        permute_in_place(&mut v, |i| 15 - i);
        let expect: Vec<u32> = (0..16).rev().collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn permute_matches_scatter_reference() {
        // Compare against the obvious out-of-place scatter for a
        // pseudo-random bijection (multiplication by 5 mod 16).
        let n = 16usize;
        let target = |i: usize| (i * 5) % n;
        let mut v: Vec<usize> = (100..100 + n).collect();
        let mut expect = vec![0usize; n];
        for i in 0..n {
            expect[target(i)] = v[i];
        }
        permute_in_place(&mut v, target);
        assert_eq!(v, expect);
    }

    #[test]
    fn permute_empty_and_singleton() {
        let mut empty: [u8; 0] = [];
        permute_in_place(&mut empty, |i| i);
        let mut one = [7u8];
        permute_in_place(&mut one, |i| i);
        assert_eq!(one, [7]);
    }
}
