//! Remote disk-service transports: the wire protocol of
//! [`crate::proto`] carried over real sockets or a simulated network.
//!
//! Three [`Transport`] implementations exist:
//!
//! * [`crate::parallel::InProcTransport`] — the default: per-disk
//!   service threads fed over channels, zero serialization
//!   (`crate::parallel`).
//! * [`UdsTransport`] — one `pdm-diskd` worker **process** per disk,
//!   framed messages over a Unix-domain socket. Submission is a channel
//!   send to a per-disk writer thread that encodes and writes request
//!   frames (so a D-disk parallel I/O costs the submitting thread D
//!   channel sends, like the in-process transport, and the D socket
//!   syscalls run concurrently); a per-disk reader thread matches
//!   reply frames to pending commands in FIFO order (sound because
//!   one writer thread per socket writes, the socket is a FIFO byte
//!   stream, and the single-threaded worker replies in request
//!   order). Submission therefore stays split-phase: the engine's
//!   read-ahead overlap pipelines requests over the socket exactly as
//!   it pipelines them over channels.
//! * [`SimNetTransport`] — a deterministic in-process "network": every
//!   command is encoded to wire bytes, handled by the same
//!   [`Worker`] the out-of-process server runs, and decoded back, with
//!   a [`SimNetModel`] charging latency and bandwidth into the
//!   system's [`crate::timing::TimingTracker`]. Placement is
//!   byte-identical to InProc (the `ByteRecord` round trip is
//!   lossless), so CI can gate the full wire path without spawning
//!   processes.
//!
//! The choice is configuration, not code: every algorithm takes
//! `&mut DiskSystem<R>` and runs unmodified on any transport
//! ([`crate::system::DiskSystem::new_with_transport`]). A TCP
//! transport to another host is one more impl of the same trait.

use crate::backend::DiskUnit;
use crate::error::{PdmError, Result};
use crate::parallel::{fail_disconnected, Cmd, Completion, Transport};
use crate::proto::{self, read_frame, Worker, FRAME_HEADER, PROTO_VERSION};
use crate::record::{ByteRecord, Record};
use crate::retry::RetryPolicy;
use crate::stats::MsgStats;
use crate::system::Backend;
use crate::tempdir::TempDir;
use std::io::{BufReader, Write};
use std::marker::PhantomData;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which transport a [`crate::system::DiskSystem`] talks to its disk
/// workers over.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum TransportConfig {
    /// In-process service threads (the default; zero-copy,
    /// byte-identical to the pre-transport behaviour).
    #[default]
    InProc,
    /// One `pdm-diskd` worker process per disk over Unix-domain
    /// sockets.
    Uds(UdsConfig),
    /// The deterministic simulated network.
    SimNet(SimNetModel),
}

/// Configuration for the Unix-domain-socket transport.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UdsConfig {
    /// Directory for the per-disk socket files; a self-cleaning temp
    /// directory when `None`.
    pub socket_dir: Option<PathBuf>,
    /// Path to the `pdm-diskd` worker binary; discovered via
    /// [`find_diskd`] when `None`.
    pub worker_bin: Option<PathBuf>,
    /// Retry/timeout/respawn policy installed on the
    /// [`crate::system::DiskSystem`] built over this transport. The
    /// default keeps PR 6/7's fail-fast behaviour.
    pub retry: RetryPolicy,
}

/// Latency/bandwidth parameters of the simulated network
/// (milliseconds and megabytes per second). Every frame is charged
/// `latency_ms + bytes / mb_per_s`, serialized through the client's
/// single interface — the link-limited bound, deliberately
/// conservative.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimNetModel {
    /// Per-frame latency in milliseconds.
    pub latency_ms: f64,
    /// Link bandwidth in megabytes per second.
    pub mb_per_s: f64,
}

impl Default for SimNetModel {
    fn default() -> Self {
        Self::lan()
    }
}

impl SimNetModel {
    /// A datacenter-LAN-flavoured default: 50 µs per frame, 1 GB/s.
    pub fn lan() -> Self {
        SimNetModel {
            latency_ms: 0.05,
            mb_per_s: 1000.0,
        }
    }

    /// Simulated time for one frame of `bytes`.
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        self.latency_ms + bytes as f64 / (self.mb_per_s * 1000.0)
    }
}

// ---------------------------------------------------------------------
// The server side (pdm-diskd and in-process test servers).

/// Serves one client connection over `stream` until STOP or EOF:
/// HELLO handshake (version and geometry validation), then the
/// request/reply loop. This is the entire body of a `pdm-diskd`
/// worker.
pub fn serve_stream(stream: UnixStream, worker: &mut Worker) -> Result<()> {
    serve_stream_with_version(stream, worker, PROTO_VERSION)
}

/// [`serve_stream`] with an explicit version — lets tests stand up a
/// worker speaking the "wrong" protocol to prove the handshake refuses
/// it.
pub fn serve_stream_with_version(
    stream: UnixStream,
    worker: &mut Worker,
    version: u32,
) -> Result<()> {
    let io_err = |what: &str, e: std::io::Error| PdmError::Io(format!("{what}: {e}"));
    // Buffer the read side: pipelined requests arrive in batches, so
    // one syscall often yields many frames.
    let mut reader = BufReader::with_capacity(
        64 * 1024,
        stream
            .try_clone()
            .map_err(|e| io_err("clone worker socket", e))?,
    );
    let mut writer = stream;
    let mut frame = Vec::new();
    let mut reply = Vec::new();

    read_frame(&mut reader, &mut frame).map_err(|e| io_err("read HELLO", e))?;
    let hello = proto::decode_hello(&frame)?;
    if hello.version != version {
        proto::encode_hello_bad_version(&mut reply, version);
        let _ = writer.write_all(&reply);
        return Ok(());
    }
    if hello.block_bytes() != worker.block_bytes() || hello.slots != worker.slots() {
        proto::encode_hello_bad_geometry(&mut reply, worker.block_bytes(), worker.slots());
        let _ = writer.write_all(&reply);
        return Ok(());
    }
    proto::encode_hello_ok(&mut reply, version);
    writer
        .write_all(&reply)
        .map_err(|e| io_err("write HELLO reply", e))?;

    loop {
        match read_frame(&mut reader, &mut frame) {
            Ok(_) => {}
            // Client gone (EOF or reset): a normal end of session.
            Err(_) => return Ok(()),
        }
        reply.clear();
        if !worker.handle(&frame, &mut reply)? {
            return Ok(()); // STOP
        }
        writer
            .write_all(&reply)
            .map_err(|e| io_err("write reply", e))?;
    }
}

/// Entry point for the `pdm-diskd` worker binary: binds the socket,
/// accepts exactly one client, serves it, exits. Usage:
///
/// ```text
/// pdm-diskd --socket PATH --block-bytes N --slots N [--file PATH] [--reopen]
/// ```
///
/// `--reopen` (respawn path) reopens an existing `--file` store
/// without truncating it, so a relaunched worker keeps the blocks its
/// predecessor wrote.
///
/// Returns the process exit code. Kept in the library so the binary is
/// a two-line wrapper and the logic is unit-testable.
pub fn diskd_main(args: impl Iterator<Item = String>) -> i32 {
    let mut socket: Option<PathBuf> = None;
    let mut block_bytes: Option<usize> = None;
    let mut slots: Option<usize> = None;
    let mut file: Option<PathBuf> = None;
    let mut reopen = false;
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("pdm-diskd: {name} requires a value");
            }
            v
        };
        match flag.as_str() {
            "--socket" => socket = value("--socket").map(PathBuf::from),
            "--block-bytes" => block_bytes = value("--block-bytes").and_then(|v| v.parse().ok()),
            "--slots" => slots = value("--slots").and_then(|v| v.parse().ok()),
            "--file" => file = value("--file").map(PathBuf::from),
            "--reopen" => reopen = true,
            other => {
                eprintln!("pdm-diskd: unknown flag {other}");
                return 2;
            }
        }
    }
    let (Some(socket), Some(block_bytes), Some(slots)) = (socket, block_bytes, slots) else {
        eprintln!(
            "usage: pdm-diskd --socket PATH --block-bytes N --slots N [--file PATH] [--reopen]"
        );
        return 2;
    };
    let mut worker = match &file {
        Some(path) => {
            let opened = if reopen {
                Worker::open_file(path, block_bytes, slots)
            } else {
                Worker::new_file(path, block_bytes, slots)
            };
            match opened {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("pdm-diskd: {e}");
                    return 1;
                }
            }
        }
        None => Worker::new_mem(block_bytes, slots),
    };
    let _ = std::fs::remove_file(&socket);
    let listener = match UnixListener::bind(&socket) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("pdm-diskd: bind {}: {e}", socket.display());
            return 1;
        }
    };
    let stream = match listener.accept() {
        Ok((s, _)) => s,
        Err(e) => {
            eprintln!("pdm-diskd: accept: {e}");
            return 1;
        }
    };
    // One client per worker; unlink the socket as soon as it is taken.
    let _ = std::fs::remove_file(&socket);
    match serve_stream(stream, &mut worker) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("pdm-diskd: {e}");
            1
        }
    }
}

/// Locates the `pdm-diskd` worker binary: the `PDM_DISKD_BIN`
/// environment variable if set, else next to the current executable
/// (hopping out of cargo's `deps/` directory for test binaries).
pub fn find_diskd() -> Option<PathBuf> {
    if let Some(p) = std::env::var_os("PDM_DISKD_BIN") {
        let p = PathBuf::from(p);
        return p.is_file().then_some(p);
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    for _ in 0..2 {
        let cand = dir.join("pdm-diskd");
        if cand.is_file() {
            return Some(cand);
        }
        if !dir.pop() {
            break;
        }
    }
    None
}

/// Everything needed to relaunch a dead `pdm-diskd` worker and
/// reconnect to it: the spawn parameters [`spawn_uds_workers`] used,
/// retained on the transport so [`Transport::respawn`] can redo the
/// spawn — with `--reopen`, so a file-backed store survives its
/// worker.
#[derive(Clone, Debug, PartialEq)]
pub struct RespawnSpec {
    /// The worker binary.
    pub bin: PathBuf,
    /// Socket path the worker listens on.
    pub socket: PathBuf,
    /// Records per block.
    pub block: usize,
    /// Block slots on the disk.
    pub slots: usize,
    /// Backing file for file-backed workers. `None` means
    /// memory-backed: the store dies with the process, so respawning
    /// would silently hand back a zeroed disk — refused instead.
    pub file: Option<PathBuf>,
}

impl RespawnSpec {
    /// Spawns a worker per this spec. `reopen` preserves an existing
    /// file-backed store (the respawn path); the initial spawn
    /// truncates for a fresh disk.
    fn launch(&self, block_bytes: usize, reopen: bool) -> Result<Child> {
        let _ = std::fs::remove_file(&self.socket);
        let mut cmd = Command::new(&self.bin);
        cmd.arg("--socket")
            .arg(&self.socket)
            .arg("--block-bytes")
            .arg(block_bytes.to_string())
            .arg("--slots")
            .arg(self.slots.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null());
        if let Some(file) = &self.file {
            cmd.arg("--file").arg(file);
            if reopen {
                cmd.arg("--reopen");
            }
        }
        cmd.spawn()
            .map_err(|e| PdmError::Io(format!("spawn {}: {e}", self.bin.display())))
    }
}

// ---------------------------------------------------------------------
// The UDS client transport.

/// Shared request/reply counters (the submitting thread and the reader
/// thread update different halves).
#[derive(Default)]
struct Counters {
    msgs_out: AtomicU64,
    msgs_in: AtomicU64,
    bytes_out: AtomicU64,
    bytes_in: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> MsgStats {
        MsgStats {
            messages_sent: self.msgs_out.load(Ordering::Relaxed),
            messages_received: self.msgs_in.load(Ordering::Relaxed),
            bytes_sent: self.bytes_out.load(Ordering::Relaxed),
            bytes_received: self.bytes_in.load(Ordering::Relaxed),
        }
    }
}

/// A submitted command awaiting its reply frame, queued to the reader
/// thread in submission order.
struct PendingOp<R> {
    idx: usize,
    is_read: bool,
    buf: Vec<R>,
    done: Sender<Completion<R>>,
}

/// The client side of one disk's Unix-domain-socket connection (see
/// the module docs for the pipelining discipline).
pub struct UdsTransport<R: Record + ByteRecord> {
    disk: usize,
    /// The connected socket, kept for severing on disconnect/teardown
    /// (the writer and reader threads hold their own clones).
    stream: UnixStream,
    cmd_tx: Option<Sender<Cmd<R>>>,
    writer: Option<JoinHandle<()>>,
    reader: Option<JoinHandle<()>>,
    child: Option<Child>,
    counters: Arc<Counters>,
    /// Set by whichever side sees the link die (submit, writer thread,
    /// fault injection); later commands fail without touching the
    /// socket.
    dead: Arc<AtomicBool>,
    /// Keeps an auto-created socket directory alive for the
    /// connection's lifetime.
    _socket_dir: Option<Arc<TempDir>>,
    /// Spawn parameters retained for [`Transport::respawn`]; `None`
    /// for externally managed workers (which this client cannot
    /// relaunch).
    respawn_spec: Option<RespawnSpec>,
}

impl<R: Record + ByteRecord> UdsTransport<R> {
    /// Connects to a listening worker at `path` and performs the
    /// HELLO handshake. `child` is the worker process to reap on
    /// shutdown, if this client spawned it.
    pub fn connect(
        disk: usize,
        path: &Path,
        block: usize,
        slots: usize,
        child: Option<Child>,
        socket_dir: Option<Arc<TempDir>>,
    ) -> Result<Self> {
        let stream =
            connect_with_retry(path, Duration::from_secs(10)).map_err(|e| e.with_disk(disk))?;
        let mut frame = Vec::new();
        proto::encode_hello(&mut frame, block, R::BYTES, slots);
        stream
            .try_clone()
            .and_then(|mut w| w.write_all(&frame))
            .map_err(|e| PdmError::Io(format!("disk {disk} HELLO: {e}")))?;
        let mut reader_stream = stream
            .try_clone()
            .map_err(|e| PdmError::Io(format!("disk {disk} socket clone: {e}")))?;
        read_frame(&mut reader_stream, &mut frame)
            .map_err(|e| PdmError::Io(format!("disk {disk} HELLO reply: {e}")))?;
        proto::decode_hello_reply(&frame, PROTO_VERSION).map_err(|e| e.with_disk(disk))?;

        let counters = Arc::new(Counters::default());
        let dead = Arc::new(AtomicBool::new(false));
        let (pending_tx, pending_rx) = channel::<PendingOp<R>>();
        let (cmd_tx, cmd_rx) = channel::<Cmd<R>>();
        let reader = {
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name(format!("pdm-uds-{disk}"))
                .spawn(move || reader_loop::<R>(disk, reader_stream, pending_rx, counters, block))
                .map_err(|e| PdmError::Io(format!("spawn uds reader: {e}")))?
        };
        let writer = {
            let counters = Arc::clone(&counters);
            let dead = Arc::clone(&dead);
            let writer_stream = stream
                .try_clone()
                .map_err(|e| PdmError::Io(format!("disk {disk} socket clone: {e}")))?;
            std::thread::Builder::new()
                .name(format!("pdm-uds-w-{disk}"))
                .spawn(move || {
                    writer_loop::<R>(disk, writer_stream, cmd_rx, pending_tx, counters, dead)
                })
                .map_err(|e| PdmError::Io(format!("spawn uds writer: {e}")))?
        };
        Ok(UdsTransport {
            disk,
            stream,
            cmd_tx: Some(cmd_tx),
            writer: Some(writer),
            reader: Some(reader),
            child,
            counters,
            dead,
            _socket_dir: socket_dir,
            respawn_spec: None,
        })
    }

    /// Retains the spawn parameters so a dead worker can be relaunched
    /// by [`Transport::respawn`].
    pub fn set_respawn_spec(&mut self, spec: RespawnSpec) {
        self.respawn_spec = Some(spec);
    }

    fn teardown(&mut self, graceful: bool) {
        if graceful && !self.dead.load(Ordering::Relaxed) {
            if let Some(tx) = self.cmd_tx.as_ref() {
                let _ = tx.send(Cmd::Stop);
            }
        }
        // Dropping the command sender ends the writer loop once the
        // queue drains; the writer dropping the pending sender then
        // ends the reader the same way. Severing the socket unblocks
        // either thread stuck mid-I/O.
        self.cmd_tx = None;
        if !graceful {
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(mut child) = self.child.take() {
            if self.dead.load(Ordering::Relaxed) {
                let _ = child.kill();
            }
            let _ = child.wait();
        }
    }
}

/// Encodes and writes request frames for one disk, then registers each
/// op with the reader in the exact order written (one writer per
/// socket, so pending order equals wire order). A write failure marks
/// the link dead and answers that and every later queued command with
/// `Disconnected`, buffers attached.
fn writer_loop<R: Record + ByteRecord>(
    disk: usize,
    mut stream: UnixStream,
    cmd_rx: Receiver<Cmd<R>>,
    pending_tx: Sender<PendingOp<R>>,
    counters: Arc<Counters>,
    dead: Arc<AtomicBool>,
) {
    let mut frame = Vec::new();
    while let Ok(cmd) = cmd_rx.recv() {
        if dead.load(Ordering::Relaxed) {
            fail_disconnected(cmd, disk);
            continue;
        }
        frame.clear();
        let (idx, is_read, buf, done) = match cmd {
            Cmd::Read {
                slot,
                buf,
                idx,
                done,
            } => {
                proto::encode_read(&mut frame, idx as u64, slot as u64);
                (idx, true, buf, done)
            }
            Cmd::Write {
                slot,
                buf,
                idx,
                done,
            } => {
                proto::encode_write(&mut frame, idx as u64, slot as u64, &buf);
                (idx, false, buf, done)
            }
            Cmd::Stop => {
                proto::encode_stop(&mut frame);
                let _ = stream.write_all(&frame);
                break;
            }
        };
        if stream.write_all(&frame).is_err() {
            dead.store(true, Ordering::Relaxed);
            let _ = done.send(Completion {
                idx,
                disk,
                buf,
                result: Err(PdmError::Disconnected { disk }),
            });
            continue;
        }
        counters.msgs_out.fetch_add(1, Ordering::Relaxed);
        counters
            .bytes_out
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        if let Err(send_err) = pending_tx.send(PendingOp {
            idx,
            is_read,
            buf,
            done,
        }) {
            // The reader is gone (socket died): answer directly.
            dead.store(true, Ordering::Relaxed);
            let p = send_err.0;
            let _ = p.done.send(Completion {
                idx: p.idx,
                disk,
                buf: p.buf,
                result: Err(PdmError::Disconnected { disk }),
            });
        }
    }
    // Dropping pending_tx lets the reader drain in-flight ops and exit.
}

/// Matches reply frames to pending commands in FIFO order and fires
/// their completions; a broken socket answers the rest with
/// `Disconnected`.
fn reader_loop<R: Record + ByteRecord>(
    disk: usize,
    stream: UnixStream,
    pending_rx: Receiver<PendingOp<R>>,
    counters: Arc<Counters>,
    block: usize,
) {
    let mut reader = BufReader::with_capacity(64 * 1024, stream);
    let mut frame = Vec::new();
    while let Ok(mut p) = pending_rx.recv() {
        let result = match read_frame(&mut reader, &mut frame) {
            Ok(wire_bytes) => {
                counters.msgs_in.fetch_add(1, Ordering::Relaxed);
                counters
                    .bytes_in
                    .fetch_add(wire_bytes as u64, Ordering::Relaxed);
                match proto::decode_reply(&frame) {
                    Ok(reply) => {
                        debug_assert_eq!(reply.idx, p.idx as u64, "reply out of order");
                        match reply.result {
                            Ok(payload) if p.is_read => {
                                if payload.len() == block * R::BYTES {
                                    for (chunk, r) in
                                        payload.chunks_exact(R::BYTES).zip(p.buf.iter_mut())
                                    {
                                        *r = R::from_bytes(chunk);
                                    }
                                    Ok(())
                                } else {
                                    Err(PdmError::Io(format!(
                                        "disk {disk} read reply carries {} bytes, expected {}",
                                        payload.len(),
                                        block * R::BYTES
                                    )))
                                }
                            }
                            Ok(_) => Ok(()),
                            Err(e) => Err(e),
                        }
                    }
                    Err(e) => Err(e),
                }
            }
            Err(_) => Err(PdmError::Disconnected { disk }),
        };
        let _ = p.done.send(Completion {
            idx: p.idx,
            disk,
            buf: p.buf,
            result,
        });
    }
}

impl<R: Record + ByteRecord> Transport<R> for UdsTransport<R> {
    fn disk(&self) -> usize {
        self.disk
    }

    fn submit(&mut self, cmd: Cmd<R>) {
        if self.dead.load(Ordering::Relaxed) {
            fail_disconnected(cmd, self.disk);
            return;
        }
        if matches!(cmd, Cmd::Stop) {
            // Graceful stop flows through teardown so the threads join.
            return;
        }
        match self.cmd_tx.as_ref().map(|tx| tx.send(cmd)) {
            Some(Ok(())) => {}
            Some(Err(send_err)) => {
                self.dead.store(true, Ordering::Relaxed);
                fail_disconnected(send_err.0, self.disk);
            }
            None => unreachable!("cmd_tx lives until teardown"),
        }
    }

    fn message_stats(&self) -> MsgStats {
        self.counters.snapshot()
    }

    fn inject_disconnect(&mut self) {
        self.dead.store(true, Ordering::Relaxed);
        // Sever the socket (in-flight replies error out on the reader)
        // and kill the worker — the crash we are simulating.
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
        }
    }

    fn respawn(&mut self) -> Result<bool> {
        if !self.dead.load(Ordering::Relaxed) {
            return Ok(false);
        }
        let Some(spec) = self.respawn_spec.take() else {
            return Err(PdmError::Io(format!(
                "disk {}: worker is externally managed, cannot respawn",
                self.disk
            )));
        };
        if spec.file.is_none() {
            // A relaunched memory-backed worker comes up zeroed —
            // that is data loss dressed as recovery. Refuse.
            self.respawn_spec = Some(spec);
            return Err(PdmError::Io(format!(
                "disk {}: memory-backed worker lost its store with the process, cannot respawn",
                self.disk
            )));
        }
        // Join the dead link's threads and reap the old child, then
        // relaunch with --reopen and redo the handshake.
        self.teardown(false);
        let fresh = spec.launch(spec.block * R::BYTES, true).and_then(|child| {
            Self::connect(
                self.disk,
                &spec.socket,
                spec.block,
                spec.slots,
                Some(child),
                self._socket_dir.clone(),
            )
        });
        match fresh {
            Ok(mut fresh) => {
                // Message counters are per-disk, not per-process: carry
                // the dead incarnation's totals forward.
                let old = self.counters.snapshot();
                fresh
                    .counters
                    .msgs_out
                    .fetch_add(old.messages_sent, Ordering::Relaxed);
                fresh
                    .counters
                    .msgs_in
                    .fetch_add(old.messages_received, Ordering::Relaxed);
                fresh
                    .counters
                    .bytes_out
                    .fetch_add(old.bytes_sent, Ordering::Relaxed);
                fresh
                    .counters
                    .bytes_in
                    .fetch_add(old.bytes_received, Ordering::Relaxed);
                fresh.respawn_spec = Some(spec);
                // The replaced (already torn down) incarnation drops
                // here; its teardown is idempotent.
                *self = fresh;
                Ok(true)
            }
            Err(e) => {
                self.respawn_spec = Some(spec);
                Err(e)
            }
        }
    }

    fn shutdown(&mut self) -> Option<Box<dyn DiskUnit<R>>> {
        self.teardown(true);
        None
    }
}

impl<R: Record + ByteRecord> Drop for UdsTransport<R> {
    fn drop(&mut self) {
        self.teardown(true);
    }
}

fn connect_with_retry(path: &Path, timeout: Duration) -> Result<UnixStream> {
    let start = Instant::now();
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if start.elapsed() > timeout {
                    return Err(PdmError::Io(format!(
                        "connect {}: {e} (worker not listening)",
                        path.display()
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Spawns one `pdm-diskd` worker process per disk and connects a
/// [`UdsTransport`] to each. Workers are spawned first and connected
/// after, so their startups overlap. `slots` is blocks per disk;
/// the `backend` chooses memory- or file-backed worker storage.
pub fn spawn_uds_workers<R: Record + ByteRecord>(
    disks: usize,
    block: usize,
    slots: usize,
    backend: &Backend,
    cfg: &UdsConfig,
) -> Result<Vec<Box<dyn Transport<R>>>> {
    let bin = match &cfg.worker_bin {
        Some(p) => p.clone(),
        None => find_diskd().ok_or_else(|| {
            PdmError::Config(
                "pdm-diskd worker binary not found; build it (cargo build) or set PDM_DISKD_BIN"
                    .into(),
            )
        })?,
    };
    let (socket_base, guard) = match &cfg.socket_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)
                .map_err(|e| PdmError::Io(format!("create_dir_all {}: {e}", dir.display())))?;
            (dir.clone(), None)
        }
        None => {
            let tmp = Arc::new(TempDir::new("pdm-uds"));
            (tmp.path().to_path_buf(), Some(tmp))
        }
    };
    if let Backend::File { dir } = backend {
        std::fs::create_dir_all(dir)
            .map_err(|e| PdmError::Io(format!("create_dir_all {}: {e}", dir.display())))?;
    }

    let mut children: Vec<(RespawnSpec, Child)> = Vec::with_capacity(disks);
    for d in 0..disks {
        let spec = RespawnSpec {
            bin: bin.clone(),
            socket: socket_base.join(format!("disk{d:03}.sock")),
            block,
            slots,
            file: match backend {
                Backend::File { dir } => Some(dir.join(format!("disk{d:03}.bin"))),
                _ => None,
            },
        };
        match spec.launch(block * R::BYTES, false) {
            Ok(child) => children.push((spec, child)),
            Err(e) => {
                for (_, mut c) in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(e);
            }
        }
    }

    let mut transports: Vec<Box<dyn Transport<R>>> = Vec::with_capacity(disks);
    let mut children = children.into_iter();
    for d in 0..disks {
        let (spec, child) = children.next().expect("one child per disk");
        match UdsTransport::<R>::connect(d, &spec.socket, block, slots, Some(child), guard.clone())
        {
            Ok(mut t) => {
                t.set_respawn_spec(spec);
                transports.push(Box::new(t));
            }
            Err(e) => {
                // Connected transports clean up on drop; reap the rest.
                for (_, mut c) in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(e);
            }
        }
    }
    Ok(transports)
}

// ---------------------------------------------------------------------
// A blocking DiskUnit client (the job service's remote disk farm).

/// A synchronous [`DiskUnit`] over a `pdm-diskd` socket with bounded
/// transparent worker respawn — the building block of the job
/// service's UDS disk farm, where each farm worker thread drives one
/// remote disk and a killed worker process must not take jobs down
/// with it.
///
/// Unlike [`UdsTransport`] (split-phase, pipelined, feeding the
/// engine), `RemoteDisk` performs one request/reply round trip per
/// call on the calling thread. On a dead socket it relaunches the
/// worker per its [`RespawnSpec`] (file-backed stores reopen without
/// truncation), replays the handshake, and retries the interrupted
/// operation once — reads are idempotent and an interrupted write is
/// simply re-sent, so the replay is safe. Respawns are bounded by
/// `max_respawns` over the disk's lifetime; past the budget (or for a
/// memory-backed store, whose contents died with the process) the
/// typed [`PdmError::Disconnected`] surfaces exactly as without
/// recovery.
pub struct RemoteDisk<R: Record + ByteRecord> {
    spec: RespawnSpec,
    stream: Option<UnixStream>,
    child: Option<Child>,
    /// Crash injection: armed by the owner; consumed at the next
    /// operation, which kills the worker mid-service and then
    /// recovers through the respawn path.
    kill: Arc<AtomicBool>,
    /// Shared ledger of successful respawns (the farm aggregates one
    /// counter across its disks for service-level reporting).
    respawns: Arc<AtomicU64>,
    max_respawns: u32,
    used_respawns: u32,
    seq: u64,
    req: Vec<u8>,
    rep: Vec<u8>,
    _records: PhantomData<R>,
}

impl<R: Record + ByteRecord> RemoteDisk<R> {
    /// Spawns a fresh worker per `spec` (truncating any existing
    /// store) and connects. `kill` and `respawns` are shared with the
    /// owner for fault injection and accounting.
    pub fn launch(
        spec: RespawnSpec,
        max_respawns: u32,
        kill: Arc<AtomicBool>,
        respawns: Arc<AtomicU64>,
    ) -> Result<Self> {
        let mut child = spec.launch(spec.block * R::BYTES, false)?;
        let stream = match Self::handshake(&spec) {
            Ok(s) => s,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
        };
        Ok(RemoteDisk {
            spec,
            stream: Some(stream),
            child: Some(child),
            kill,
            respawns,
            max_respawns,
            used_respawns: 0,
            seq: 0,
            req: Vec::new(),
            rep: Vec::new(),
            _records: PhantomData,
        })
    }

    /// Successful respawns this disk has performed.
    pub fn respawns_used(&self) -> u32 {
        self.used_respawns
    }

    fn handshake(spec: &RespawnSpec) -> Result<UnixStream> {
        let mut stream = connect_with_retry(&spec.socket, Duration::from_secs(10))?;
        let mut frame = Vec::new();
        proto::encode_hello(&mut frame, spec.block, R::BYTES, spec.slots);
        stream
            .write_all(&frame)
            .map_err(|e| PdmError::Io(format!("remote disk HELLO: {e}")))?;
        read_frame(&mut stream, &mut frame)
            .map_err(|e| PdmError::Io(format!("remote disk HELLO reply: {e}")))?;
        proto::decode_hello_reply(&frame, PROTO_VERSION)?;
        Ok(stream)
    }

    /// Consumes an armed kill flag: murders the worker and severs the
    /// socket, so the next round trip observes the crash immediately.
    fn maybe_kill(&mut self) {
        if self.kill.swap(false, Ordering::Relaxed) {
            if let Some(c) = self.child.as_mut() {
                let _ = c.kill();
            }
            if let Some(s) = self.stream.take() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Relaunches a dead worker (`--reopen`: the file-backed store
    /// survives) and replays the handshake, within the respawn budget.
    fn recover(&mut self) -> Result<()> {
        if self.spec.file.is_none() || self.used_respawns >= self.max_respawns {
            return Err(PdmError::Disconnected { disk: usize::MAX });
        }
        if let Some(mut c) = self.child.take() {
            let _ = c.kill();
            let _ = c.wait();
        }
        self.stream = None;
        let mut child = self.spec.launch(self.spec.block * R::BYTES, true)?;
        let stream = match Self::handshake(&self.spec) {
            Ok(s) => s,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
        };
        self.child = Some(child);
        self.stream = Some(stream);
        self.used_respawns += 1;
        self.respawns.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Writes the frame in `req`, reads the reply body into `rep`. A
    /// broken socket surfaces as `Disconnected` with the stream
    /// dropped so the caller's recovery path engages.
    fn send_recv(&mut self) -> Result<()> {
        let Some(stream) = self.stream.as_mut() else {
            return Err(PdmError::Disconnected { disk: usize::MAX });
        };
        if stream.write_all(&self.req).is_err() || read_frame(stream, &mut self.rep).is_err() {
            self.stream = None;
            return Err(PdmError::Disconnected { disk: usize::MAX });
        }
        Ok(())
    }

    fn read_once(&mut self, slot: usize, out: &mut [R]) -> Result<()> {
        self.seq += 1;
        self.req.clear();
        proto::encode_read(&mut self.req, self.seq, slot as u64);
        self.send_recv()?;
        let reply = proto::decode_reply(&self.rep)?;
        let payload = reply.result?;
        if payload.len() != self.spec.block * R::BYTES {
            return Err(PdmError::Io(format!(
                "remote disk read reply carries {} bytes, expected {}",
                payload.len(),
                self.spec.block * R::BYTES
            )));
        }
        for (chunk, r) in payload.chunks_exact(R::BYTES).zip(out.iter_mut()) {
            *r = R::from_bytes(chunk);
        }
        Ok(())
    }

    fn write_once(&mut self, slot: usize, data: &[R]) -> Result<()> {
        self.seq += 1;
        self.req.clear();
        proto::encode_write(&mut self.req, self.seq, slot as u64, data);
        self.send_recv()?;
        let reply = proto::decode_reply(&self.rep)?;
        reply.result.map(|_| ())
    }
}

impl<R: Record + ByteRecord> DiskUnit<R> for RemoteDisk<R> {
    fn slots(&self) -> usize {
        self.spec.slots
    }

    fn block(&self) -> usize {
        self.spec.block
    }

    fn read(&mut self, slot: usize, out: &mut [R]) -> Result<()> {
        self.maybe_kill();
        match self.read_once(slot, out) {
            Err(PdmError::Disconnected { .. }) => {
                self.recover()?;
                self.read_once(slot, out)
            }
            r => r,
        }
    }

    fn write(&mut self, slot: usize, data: &[R]) -> Result<()> {
        self.maybe_kill();
        match self.write_once(slot, data) {
            Err(PdmError::Disconnected { .. }) => {
                self.recover()?;
                self.write_once(slot, data)
            }
            r => r,
        }
    }
}

impl<R: Record + ByteRecord> Drop for RemoteDisk<R> {
    fn drop(&mut self) {
        let graceful = if let Some(mut s) = self.stream.take() {
            self.req.clear();
            proto::encode_stop(&mut self.req);
            s.write_all(&self.req).is_ok()
        } else {
            false
        };
        if let Some(mut c) = self.child.take() {
            if !graceful {
                let _ = c.kill();
            }
            let _ = c.wait();
        }
    }
}

// ---------------------------------------------------------------------
// The simulated-network transport.

/// The deterministic simulated network: request and reply take the
/// full encode → [`Worker::handle`] → decode path of the real wire
/// protocol, synchronously, with [`SimNetModel`] time accrued per
/// frame (collected by
/// [`crate::system::DiskSystem::network_ms`] and, when timing is
/// enabled, folded into the makespan).
pub struct SimNetTransport<R: Record + ByteRecord> {
    disk: usize,
    worker: Worker,
    model: SimNetModel,
    stats: MsgStats,
    sim_ms: f64,
    dead: bool,
    req: Vec<u8>,
    rep: Vec<u8>,
    _records: PhantomData<R>,
}

impl<R: Record + ByteRecord> SimNetTransport<R> {
    /// A memory-backed simulated worker for `disk`.
    pub fn new_mem(disk: usize, block: usize, slots: usize, model: SimNetModel) -> Self {
        Self::with_worker(disk, Worker::new_mem(block * R::BYTES, slots), model)
    }

    /// A file-backed simulated worker for `disk`, storing at `path`.
    pub fn new_file(
        disk: usize,
        path: &Path,
        block: usize,
        slots: usize,
        model: SimNetModel,
    ) -> Result<Self> {
        Ok(Self::with_worker(
            disk,
            Worker::new_file(path, block * R::BYTES, slots)?,
            model,
        ))
    }

    fn with_worker(disk: usize, worker: Worker, model: SimNetModel) -> Self {
        SimNetTransport {
            disk,
            worker,
            model,
            stats: MsgStats::default(),
            sim_ms: 0.0,
            dead: false,
            req: Vec::new(),
            rep: Vec::new(),
            _records: PhantomData,
        }
    }

    /// Encodes nothing — `req` already holds exactly one frame. Sends
    /// it through the worker and decodes the reply into a completion.
    fn round_trip(
        &mut self,
        idx: usize,
        is_read: bool,
        mut buf: Vec<R>,
        done: Sender<Completion<R>>,
    ) {
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += self.req.len() as u64;
        self.sim_ms += self.model.transfer_ms(self.req.len() as u64);
        self.rep.clear();
        let result = match self.worker.handle(&self.req[FRAME_HEADER..], &mut self.rep) {
            Ok(true) => {
                self.stats.messages_received += 1;
                self.stats.bytes_received += self.rep.len() as u64;
                self.sim_ms += self.model.transfer_ms(self.rep.len() as u64);
                match proto::decode_reply(&self.rep[FRAME_HEADER..]) {
                    Ok(reply) => match reply.result {
                        Ok(payload) if is_read => {
                            for (chunk, r) in payload.chunks_exact(R::BYTES).zip(buf.iter_mut()) {
                                *r = R::from_bytes(chunk);
                            }
                            Ok(())
                        }
                        Ok(_) => Ok(()),
                        Err(e) => Err(e),
                    },
                    Err(e) => Err(e),
                }
            }
            Ok(false) => Err(PdmError::Io("worker answered STOP to a transfer".into())),
            Err(e) => Err(e),
        };
        let _ = done.send(Completion {
            idx,
            disk: self.disk,
            buf,
            result,
        });
    }
}

impl<R: Record + ByteRecord> Transport<R> for SimNetTransport<R> {
    fn disk(&self) -> usize {
        self.disk
    }

    fn submit(&mut self, cmd: Cmd<R>) {
        if self.dead {
            fail_disconnected(cmd, self.disk);
            return;
        }
        match cmd {
            Cmd::Read {
                slot,
                buf,
                idx,
                done,
            } => {
                self.req.clear();
                proto::encode_read(&mut self.req, idx as u64, slot as u64);
                self.round_trip(idx, true, buf, done);
            }
            Cmd::Write {
                slot,
                buf,
                idx,
                done,
            } => {
                self.req.clear();
                proto::encode_write(&mut self.req, idx as u64, slot as u64, &buf);
                self.round_trip(idx, false, buf, done);
            }
            Cmd::Stop => {}
        }
    }

    fn message_stats(&self) -> MsgStats {
        self.stats
    }

    fn take_sim_ms(&mut self) -> f64 {
        std::mem::take(&mut self.sim_ms)
    }

    fn inject_disconnect(&mut self) {
        self.dead = true;
    }

    fn respawn(&mut self) -> Result<bool> {
        // The simulated worker lives in this process: its store
        // survived the "crash", so reviving the link is the whole
        // recovery — the deterministic stand-in for a UDS relaunch.
        Ok(std::mem::take(&mut self.dead))
    }

    fn shutdown(&mut self) -> Option<Box<dyn DiskUnit<R>>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_model_charges_latency_plus_bandwidth() {
        let m = SimNetModel {
            latency_ms: 0.5,
            mb_per_s: 1.0,
        };
        // 1000 bytes at 1 MB/s = 1 ms, plus 0.5 ms latency.
        assert!((m.transfer_ms(1000) - 1.5).abs() < 1e-12);
        assert!((m.transfer_ms(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sim_transport_round_trip_counts_messages_and_time() {
        let mut t = SimNetTransport::<u64>::new_mem(0, 2, 4, SimNetModel::lan());
        let (tx, rx) = channel();
        t.submit(Cmd::Write {
            slot: 1,
            buf: vec![10, 11],
            idx: 0,
            done: tx.clone(),
        });
        rx.recv().unwrap().result.unwrap();
        t.submit(Cmd::Read {
            slot: 1,
            buf: vec![0, 0],
            idx: 1,
            done: tx,
        });
        let c = rx.recv().unwrap();
        c.result.unwrap();
        assert_eq!(c.buf, vec![10, 11]);
        let s = t.message_stats();
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.messages_received, 2);
        assert!(s.bytes_sent > 0 && s.bytes_received > 0);
        let ms = t.take_sim_ms();
        assert!(ms > 0.0);
        assert_eq!(t.take_sim_ms(), 0.0, "take resets the accrual");
    }

    #[test]
    fn sim_transport_disconnect_answers_without_worker() {
        let mut t = SimNetTransport::<u64>::new_mem(3, 2, 4, SimNetModel::lan());
        let before = t.message_stats();
        t.inject_disconnect();
        let (tx, rx) = channel();
        t.submit(Cmd::Read {
            slot: 0,
            buf: vec![0, 0],
            idx: 0,
            done: tx,
        });
        let c = rx.recv().unwrap();
        assert!(matches!(c.result, Err(PdmError::Disconnected { disk: 3 })));
        assert_eq!(c.buf.len(), 2);
        assert_eq!(t.message_stats(), before, "dead link moves no messages");
    }

    #[test]
    fn serve_stream_over_socketpair_round_trip() {
        // A worker on a plain thread over a socketpair: the same serve
        // loop pdm-diskd runs, no process spawn needed.
        let (client, server) = UnixStream::pair().unwrap();
        let handle = std::thread::spawn(move || {
            let mut worker = Worker::new_mem(16, 8);
            serve_stream(server, &mut worker).unwrap();
        });
        let mut frame = Vec::new();
        proto::encode_hello(&mut frame, 2, 8, 8);
        let mut writer = client.try_clone().unwrap();
        writer.write_all(&frame).unwrap();
        let mut reader = client.try_clone().unwrap();
        read_frame(&mut reader, &mut frame).unwrap();
        proto::decode_hello_reply(&frame, PROTO_VERSION).unwrap();
        // One write, one read back.
        let mut req = Vec::new();
        proto::encode_write::<u64>(&mut req, 0, 3, &[111, 222]);
        writer.write_all(&req).unwrap();
        read_frame(&mut reader, &mut frame).unwrap();
        assert!(proto::decode_reply(&frame).unwrap().result.is_ok());
        req.clear();
        proto::encode_read(&mut req, 1, 3);
        writer.write_all(&req).unwrap();
        read_frame(&mut reader, &mut frame).unwrap();
        let reply = proto::decode_reply(&frame).unwrap();
        let payload = reply.result.unwrap();
        assert_eq!(u64::from_bytes(&payload[..8]), 111);
        assert_eq!(u64::from_bytes(&payload[8..]), 222);
        // STOP ends the serve loop.
        req.clear();
        proto::encode_stop(&mut req);
        writer.write_all(&req).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn serve_stream_refuses_version_mismatch() {
        let (client, server) = UnixStream::pair().unwrap();
        let handle = std::thread::spawn(move || {
            let mut worker = Worker::new_mem(16, 8);
            serve_stream_with_version(server, &mut worker, PROTO_VERSION + 1).unwrap();
        });
        let mut frame = Vec::new();
        proto::encode_hello(&mut frame, 2, 8, 8);
        let mut writer = client.try_clone().unwrap();
        writer.write_all(&frame).unwrap();
        let mut reader = client;
        read_frame(&mut reader, &mut frame).unwrap();
        let err = proto::decode_hello_reply(&frame, PROTO_VERSION).unwrap_err();
        assert!(matches!(
            err,
            PdmError::ProtocolVersion {
                expected: PROTO_VERSION,
                ..
            }
        ));
        handle.join().unwrap();
    }

    #[test]
    fn serve_stream_refuses_geometry_mismatch() {
        let (client, server) = UnixStream::pair().unwrap();
        let handle = std::thread::spawn(move || {
            let mut worker = Worker::new_mem(16, 8);
            serve_stream(server, &mut worker).unwrap();
        });
        let mut frame = Vec::new();
        proto::encode_hello(&mut frame, 2, 8, 99); // wrong slot count
        let mut writer = client.try_clone().unwrap();
        writer.write_all(&frame).unwrap();
        let mut reader = client;
        read_frame(&mut reader, &mut frame).unwrap();
        assert!(matches!(
            proto::decode_hello_reply(&frame, PROTO_VERSION),
            Err(PdmError::Config(_))
        ));
        handle.join().unwrap();
    }

    #[test]
    fn sim_transport_respawn_revives_the_link_with_data_intact() {
        let mut t = SimNetTransport::<u64>::new_mem(2, 2, 4, SimNetModel::lan());
        let (tx, rx) = channel();
        t.submit(Cmd::Write {
            slot: 0,
            buf: vec![5, 6],
            idx: 0,
            done: tx.clone(),
        });
        rx.recv().unwrap().result.unwrap();
        assert!(!t.respawn().unwrap(), "healthy link: nothing to do");
        t.inject_disconnect();
        assert!(t.respawn().unwrap());
        t.submit(Cmd::Read {
            slot: 0,
            buf: vec![0, 0],
            idx: 1,
            done: tx,
        });
        let c = rx.recv().unwrap();
        c.result.unwrap();
        assert_eq!(c.buf, vec![5, 6], "store survived the crash");
    }

    #[test]
    fn remote_disk_respawns_killed_worker_with_data_intact() {
        let Some(bin) = find_diskd() else {
            eprintln!("pdm-diskd not built; skipping");
            return;
        };
        let dir = TempDir::new("pdm-remote-disk");
        let spec = RespawnSpec {
            bin,
            socket: dir.path().join("d.sock"),
            block: 2,
            slots: 4,
            file: Some(dir.path().join("d.bin")),
        };
        let kill = Arc::new(AtomicBool::new(false));
        let respawns = Arc::new(AtomicU64::new(0));
        let mut disk =
            RemoteDisk::<u64>::launch(spec, 2, Arc::clone(&kill), Arc::clone(&respawns)).unwrap();
        assert_eq!(DiskUnit::<u64>::slots(&disk), 4);
        assert_eq!(DiskUnit::<u64>::block(&disk), 2);
        disk.write(1, &[7, 8]).unwrap();
        // Crash the worker; the very next operation recovers it and
        // the file-backed store comes back un-truncated.
        kill.store(true, Ordering::Relaxed);
        let mut out = [0u64; 2];
        disk.read(1, &mut out).unwrap();
        assert_eq!(out, [7, 8]);
        assert_eq!(respawns.load(Ordering::Relaxed), 1);
        assert_eq!(disk.respawns_used(), 1);
        // A second crash exhausts the budget of 2 on its respawn; a
        // third surfaces Disconnected.
        kill.store(true, Ordering::Relaxed);
        disk.read(1, &mut out).unwrap();
        assert_eq!(respawns.load(Ordering::Relaxed), 2);
        kill.store(true, Ordering::Relaxed);
        let err = disk.read(1, &mut out).unwrap_err();
        assert!(matches!(err, PdmError::Disconnected { .. }), "{err}");
    }

    #[test]
    fn find_diskd_respects_env_override() {
        // Missing file → None even when the variable is set.
        std::env::set_var("PDM_DISKD_BIN", "/definitely/not/a/binary");
        assert_eq!(find_diskd(), None);
        std::env::remove_var("PDM_DISKD_BIN");
    }
}
