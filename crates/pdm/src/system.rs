//! The parallel disk system: `D` disks driven by parallel I/O
//! operations with exact accounting.
//!
//! A [`DiskSystem`] owns one [`DiskUnit`] per
//! disk and exposes the model's two access disciplines:
//!
//! * **striped** — [`DiskSystem::read_stripe`] / [`DiskSystem::write_stripe`]
//!   move the `D` blocks at the same location on every disk;
//! * **independent** — [`DiskSystem::read_blocks`] /
//!   [`DiskSystem::write_blocks`] move at most one block per disk at
//!   arbitrary locations.
//!
//! Either way one call is one parallel I/O (the paper's unit of cost)
//! and is tallied in [`IoStats`]. The system enforces the model: a
//! request that addresses the same disk twice in one operation is an
//! error, not a slower success.
//!
//! Disks are sized as `portions × N/BD` stripes. Algorithms that "map
//! records from one set of N/BD stripes to a different set" (Section 3)
//! use portion 0 as the source and portion 1 as the target, swapping
//! roles between passes.
//!
//! # Service modes and the streaming fast path
//!
//! How a parallel I/O is physically serviced is orthogonal to how it is
//! charged; [`ServiceMode`] selects among a serial loop, the legacy
//! spawn-per-operation threads, and persistent per-disk service threads
//! ([`crate::parallel::DiskPool`]). In [`ServiceMode::Threaded`] the
//! system additionally supports *split-phase* operations
//! ([`DiskSystem::begin_read`] / [`DiskSystem::finish_read`] and the
//! write duals): the operation is validated, charged, and submitted to
//! the service threads immediately, and the caller collects the data
//! later — the [`crate::engine::PassEngine`] uses this to overlap disk
//! transfers with in-memory permutation. Split-phase operations move
//! data through a pool of reusable block buffers
//! ([`DiskSystem::buffer_pool_stats`]) instead of fresh allocations;
//! every code path, including fault-injection errors, must return its
//! blocks to the pool.

use crate::backend::{DiskUnit, FileDisk, MemDisk};
use crate::config::Geometry;
use crate::error::{PdmError, Result};
use crate::fault::FaultPlan;
use crate::layout::Layout;
use crate::parallel::{threaded_read, threaded_write, Cmd, Completion, DiskPool, Transport};
use crate::record::{ByteRecord, Record};
use crate::retry::{RetryPolicy, RetryStats};
use crate::sched::SchedHandle;
use crate::stats::{IoStats, MsgStats};
use crate::timing::{TimingModel, TimingTracker};
use crate::transport::{spawn_uds_workers, SimNetTransport, TransportConfig};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Which storage backs the disk units of a [`DiskSystem`].
///
/// Every algorithm in this workspace takes `&mut DiskSystem<R>`, so a
/// system built from a `Backend` runs the BMMC passes, fused plans,
/// the BPC baseline, and `extsort` unmodified on either backend; only
/// the wall clock (never the charged parallel-I/O count) differs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// In-memory disks ([`MemDisk`]) — the default for experiments:
    /// the paper's cost model counts operations, not bytes.
    #[default]
    Mem,
    /// One preallocated file per disk ([`FileDisk`]), for wall-clock
    /// realism: real positional system calls, serviced by the same
    /// [`ServiceMode`] machinery (including the threaded split-phase
    /// overlap).
    File {
        /// Directory holding the per-disk `disk###.bin` files
        /// (created if missing).
        dir: PathBuf,
    },
}

/// A reference to one block: disk number and block slot on that disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockRef {
    /// Disk number, `0 .. D`.
    pub disk: usize,
    /// Block slot on the disk (global across portions).
    pub slot: usize,
}

/// How parallel I/O operations are physically serviced. The charged
/// cost ([`IoStats`]) is identical in every mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServiceMode {
    /// One thread services all participating disks in sequence.
    #[default]
    Serial,
    /// Legacy threading: spawn one short-lived thread per disk per
    /// operation. Retained for comparison benchmarks; superseded by
    /// [`ServiceMode::Threaded`].
    SpawnPerOp,
    /// Persistent per-disk service threads with asynchronous
    /// submission; enables the split-phase
    /// [`DiskSystem::begin_read`]/[`DiskSystem::begin_write`] overlap.
    Threaded,
}

/// The physical host of the disk units, per service mode.
enum Service<R: Record> {
    Serial(Vec<Box<dyn DiskUnit<R>>>),
    SpawnPerOp(Vec<Box<dyn DiskUnit<R>>>),
    Pooled(DiskPool<R>),
    /// A transport pool driven in lockstep: each command's completion
    /// is collected before the next is submitted. This is the serial
    /// discipline over a *remote* transport (whose disks live behind a
    /// [`Transport`] rather than as local units), so
    /// [`ServiceMode::Serial`] keeps its meaning on remote systems.
    Lockstep(DiskPool<R>),
}

impl<R: Record> Service<R> {
    fn mode(&self) -> ServiceMode {
        match self {
            Service::Serial(_) | Service::Lockstep(_) => ServiceMode::Serial,
            Service::SpawnPerOp(_) => ServiceMode::SpawnPerOp,
            Service::Pooled(_) => ServiceMode::Threaded,
        }
    }

    fn into_units(self) -> Vec<Box<dyn DiskUnit<R>>> {
        match self {
            Service::Serial(u) | Service::SpawnPerOp(u) => u,
            Service::Pooled(pool) | Service::Lockstep(pool) => pool.into_units(),
        }
    }
}

/// Resolves one read completion: data into `out`, buffer back to the
/// pool on every path, first error retained.
fn absorb_read_completion<R: Record>(
    pool: &mut BlockPool<R>,
    c: Completion<R>,
    out: &mut [R],
    block: usize,
    first_err: &mut Option<PdmError>,
) {
    match c.result {
        Ok(()) => out[c.idx * block..(c.idx + 1) * block].copy_from_slice(&c.buf),
        Err(e) if first_err.is_none() => *first_err = Some(e.with_disk(c.disk)),
        Err(_) => {}
    }
    pool.put(c.buf);
}

/// Resolves one write completion: buffer back to the pool, first error
/// retained.
fn absorb_write_completion<R: Record>(
    pool: &mut BlockPool<R>,
    c: Completion<R>,
    first_err: &mut Option<PdmError>,
) {
    if let Err(e) = c.result {
        if first_err.is_none() {
            *first_err = Some(e.with_disk(c.disk));
        }
    }
    pool.put(c.buf);
}

/// Pool-accounting snapshot (see [`DiskSystem::buffer_pool_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Buffers sitting in the free list.
    pub free: usize,
    /// Buffers currently lent out (in flight or held by a ticket).
    pub outstanding: usize,
    /// Total buffers ever allocated. A steady-state workload should
    /// stop growing this after warm-up; growth under errors indicates
    /// a leak on an error path.
    pub allocated: u64,
}

/// A recycling pool of block-sized record buffers.
struct BlockPool<R> {
    block: usize,
    free: Vec<Vec<R>>,
    outstanding: usize,
    allocated: u64,
}

impl<R: Record> BlockPool<R> {
    fn new(block: usize) -> Self {
        BlockPool {
            block,
            free: Vec::new(),
            outstanding: 0,
            allocated: 0,
        }
    }

    fn take(&mut self) -> Vec<R> {
        self.outstanding += 1;
        match self.free.pop() {
            Some(buf) => buf,
            None => {
                self.allocated += 1;
                vec![R::default(); self.block]
            }
        }
    }

    fn put(&mut self, buf: Vec<R>) {
        debug_assert_eq!(buf.len(), self.block, "foreign buffer returned to pool");
        self.outstanding -= 1;
        self.free.push(buf);
    }

    fn stats(&self) -> BufferPoolStats {
        BufferPoolStats {
            free: self.free.len(),
            outstanding: self.outstanding,
            allocated: self.allocated,
        }
    }
}

/// A split-phase parallel read in flight (see
/// [`DiskSystem::begin_read`]). Must be resolved with
/// [`DiskSystem::finish_read`] or [`DiskSystem::discard_read`]; simply
/// dropping the ticket strands its pooled buffers.
#[must_use = "resolve with finish_read/discard_read or the pooled buffers are stranded"]
pub struct ReadTicket<R: Record> {
    /// Completion channel (Threaded mode); `None` when the transfer
    /// completed synchronously at `begin_read`.
    rx: Option<Receiver<Completion<R>>>,
    /// Completion return address, retained so `finish_read` can
    /// resubmit a recovered command (retry/respawn) to the same drain.
    tx: Option<Sender<Completion<R>>>,
    /// The request, retained for recovery resubmission.
    refs: Vec<BlockRef>,
    /// Per-command recovery attempts already spent.
    attempts: Vec<u32>,
    /// Outstanding completions on `rx`.
    pending: usize,
    /// Buffers already filled in request order (synchronous modes).
    sync: Vec<Vec<R>>,
    /// Number of requested blocks (one per disk).
    count: usize,
}

impl<R: Record> ReadTicket<R> {
    /// Records transferred by this operation.
    pub fn records(&self, block: usize) -> usize {
        self.count * block
    }
}

/// A split-phase parallel write in flight (see
/// [`DiskSystem::begin_write`]). Must be resolved with
/// [`DiskSystem::finish_write`].
#[must_use = "resolve with finish_write or the staging buffers are stranded"]
pub struct WriteTicket<R: Record> {
    rx: Option<Receiver<Completion<R>>>,
    /// Completion return address for recovery resubmission.
    tx: Option<Sender<Completion<R>>>,
    /// The request, retained for recovery resubmission.
    refs: Vec<BlockRef>,
    /// Per-command recovery attempts already spent.
    attempts: Vec<u32>,
    pending: usize,
}

/// A simulated parallel disk system storing records of type `R`.
pub struct DiskSystem<R: Record> {
    geom: Geometry,
    layout: Layout,
    service: Service<R>,
    pool: BlockPool<R>,
    portions: usize,
    stats: IoStats,
    faults: FaultPlan,
    op_counter: u64,
    timing: Option<TimingTracker>,
    striped_only: bool,
    /// True when the disks live behind remote transports (UDS workers
    /// or the simulated network) instead of local units. Remote
    /// systems map [`ServiceMode::Serial`] onto [`Service::Lockstep`].
    remote: bool,
    /// Simulated network time accrued by a SimNet transport
    /// ([`DiskSystem::network_ms`]).
    net_ms: f64,
    /// When set, every counted operation first acquires a grant from
    /// the fair-share scheduler this handle belongs to
    /// ([`DiskSystem::set_governor`]); the grant is charged to the
    /// handle's job.
    governor: Option<SchedHandle>,
    /// Bounds on the recovery layer ([`DiskSystem::set_retry_policy`]).
    /// The default is fail-fast: one attempt, no timeouts, no respawns.
    retry: RetryPolicy,
    /// The recovery ledger ([`DiskSystem::retry_stats`]).
    retry_stats: RetryStats,
    /// Set when a per-op completion timeout fired during the current
    /// drain; converts a final unrecovered `Disconnected` into
    /// [`PdmError::Timeout`]. Cleared at the end of every operation.
    timeout_fired: Option<u64>,
    /// Reused duplicate-disk scratch for per-operation validation, so
    /// the admission path allocates nothing in steady state.
    seen_disks: Vec<bool>,
    /// Reused stripe-reference scratch for [`Self::read_stripe_into`].
    stripe_scratch: Vec<BlockRef>,
}

impl<R: Record> DiskSystem<R> {
    /// A system over pre-built disk units (one per disk, each sized
    /// `portions × N/BD` block slots).
    fn from_units(geom: Geometry, portions: usize, units: Vec<Box<dyn DiskUnit<R>>>) -> Self {
        assert!(portions >= 1, "need at least one portion");
        assert_eq!(units.len(), geom.disks(), "one unit per disk");
        DiskSystem {
            geom,
            layout: Layout::new(&geom),
            service: Service::Serial(units),
            pool: BlockPool::new(geom.block()),
            portions,
            stats: IoStats::default(),
            faults: FaultPlan::new(),
            op_counter: 0,
            timing: None,
            striped_only: false,
            remote: false,
            governor: None,
            retry: RetryPolicy::default(),
            retry_stats: RetryStats::default(),
            timeout_fired: None,
            net_ms: 0.0,
            seen_disks: vec![false; geom.disks()],
            stripe_scratch: Vec::with_capacity(geom.disks()),
        }
    }

    /// A system whose disks live behind remote transports. Starts in
    /// lockstep (the serial discipline; see [`Service::Lockstep`]).
    fn from_remote(geom: Geometry, portions: usize, pool: DiskPool<R>) -> Self {
        assert!(portions >= 1, "need at least one portion");
        assert_eq!(pool.disks(), geom.disks(), "one transport per disk");
        DiskSystem {
            geom,
            layout: Layout::new(&geom),
            service: Service::Lockstep(pool),
            pool: BlockPool::new(geom.block()),
            portions,
            stats: IoStats::default(),
            faults: FaultPlan::new(),
            op_counter: 0,
            timing: None,
            striped_only: false,
            remote: true,
            governor: None,
            retry: RetryPolicy::default(),
            retry_stats: RetryStats::default(),
            timeout_fired: None,
            net_ms: 0.0,
            seen_disks: vec![false; geom.disks()],
            stripe_scratch: Vec::with_capacity(geom.disks()),
        }
    }

    /// A system whose disks live behind caller-supplied transports,
    /// one per disk in disk order. This is the multi-tenant
    /// construction: a service leases each job its own `DiskSystem`
    /// whose transports all feed the *same* shared per-disk workers,
    /// so the physical disks are contended while accounting and
    /// buffer pools stay per-job. Starts in lockstep
    /// ([`ServiceMode::Serial`]); [`DiskSystem::set_threaded`]
    /// switches to the pipelined pool.
    ///
    /// The transports' workers may expose more slots than this
    /// system's `portions × N/BD`; the system still validates every
    /// request against its own geometry, so a job cannot address
    /// outside its lease.
    pub fn new_from_transports(
        geom: Geometry,
        portions: usize,
        transports: Vec<Box<dyn Transport<R>>>,
    ) -> Self {
        Self::from_remote(geom, portions, DiskPool::from_transports(transports))
    }

    /// A memory-backed system with `portions` address spaces of `N/BD`
    /// stripes each (use 2 for the source/target double-buffering of
    /// the one-pass algorithms).
    pub fn new_mem(geom: Geometry, portions: usize) -> Self {
        let slots = portions * geom.stripes();
        let units = (0..geom.disks())
            .map(|_| Box::new(MemDisk::<R>::new(geom.block(), slots)) as Box<dyn DiskUnit<R>>)
            .collect();
        Self::from_units(geom, portions, units)
    }

    /// The geometry this system was built with.
    #[inline]
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// The address layout (Figure 2 field extractor).
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Number of block slots on each disk.
    #[inline]
    pub fn slots_per_disk(&self) -> usize {
        self.portions * self.geom.stripes()
    }

    /// Number of portions (independent N-record address spaces).
    #[inline]
    pub fn portions(&self) -> usize {
        self.portions
    }

    /// First stripe slot of a portion.
    #[inline]
    pub fn portion_base(&self, portion: usize) -> usize {
        assert!(portion < self.portions, "portion {portion} out of range");
        portion * self.geom.stripes()
    }

    /// Cumulative I/O statistics.
    #[inline]
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the I/O statistics (not the operation counter used by
    /// fault plans).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Installs a fault-injection plan.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Selects how parallel I/Os are physically serviced. Charged costs
    /// are identical in every mode; only wall-clock behaviour differs.
    /// Switching modes drains any service threads first.
    pub fn set_service_mode(&mut self, mode: ServiceMode) {
        if self.remote {
            // Remote disks cannot be hosted as local units; the pool of
            // transports *moves* between disciplines. Serial maps onto
            // lockstep; SpawnPerOp has no remote analogue and gets the
            // pipelined pool (the closest in spirit: per-op concurrency).
            let want_lockstep = matches!(mode, ServiceMode::Serial);
            if want_lockstep == matches!(self.service, Service::Lockstep(_)) {
                return;
            }
            let placeholder = Service::Serial(Vec::new());
            let pool = match std::mem::replace(&mut self.service, placeholder) {
                Service::Pooled(pool) | Service::Lockstep(pool) => pool,
                _ => unreachable!("remote systems always hold a transport pool"),
            };
            self.service = if want_lockstep {
                Service::Lockstep(pool)
            } else {
                Service::Pooled(pool)
            };
            return;
        }
        if self.service.mode() == mode {
            return;
        }
        let placeholder = Service::Serial(Vec::new());
        let units = std::mem::replace(&mut self.service, placeholder).into_units();
        self.service = match mode {
            ServiceMode::Serial => Service::Serial(units),
            ServiceMode::SpawnPerOp => Service::SpawnPerOp(units),
            ServiceMode::Threaded => Service::Pooled(DiskPool::new(units)),
        };
    }

    /// The current service mode.
    pub fn service_mode(&self) -> ServiceMode {
        self.service.mode()
    }

    /// Enables or disables threaded (one thread per disk) servicing of
    /// parallel I/Os. `true` selects [`ServiceMode::Threaded`]
    /// (persistent service threads), `false` [`ServiceMode::Serial`].
    pub fn set_threaded(&mut self, on: bool) {
        self.set_service_mode(if on {
            ServiceMode::Threaded
        } else {
            ServiceMode::Serial
        });
    }

    /// Buffer-pool accounting for the split-phase paths. After every
    /// completed (or failed) operation, `outstanding` counts only
    /// buffers held by unresolved tickets.
    pub fn buffer_pool_stats(&self) -> BufferPoolStats {
        self.pool.stats()
    }

    /// Transport message counters, merged over all disks: frames and
    /// wire bytes both ways. Identically zero on in-process systems —
    /// channels move buffers, not messages.
    pub fn message_stats(&self) -> MsgStats {
        match &self.service {
            Service::Pooled(pool) | Service::Lockstep(pool) => pool.message_stats(),
            _ => MsgStats::default(),
        }
    }

    /// Per-disk transport message counters (empty on non-pooled
    /// services).
    pub fn message_stats_per_disk(&self) -> Vec<MsgStats> {
        match &self.service {
            Service::Pooled(pool) | Service::Lockstep(pool) => pool.message_stats_per_disk(),
            _ => Vec::new(),
        }
    }

    /// Simulated network time accrued so far (zero unless a SimNet
    /// transport is in use). Also folded into the timing tracker's
    /// makespan when [`DiskSystem::set_timing`] is active.
    pub fn network_ms(&self) -> f64 {
        self.net_ms
    }

    /// Collects simulated network time accrued by the transports since
    /// the last call (SimNet charges synchronously inside submission).
    fn absorb_network_time(&mut self) {
        let ms = match &mut self.service {
            Service::Pooled(pool) | Service::Lockstep(pool) => pool.take_sim_ms(),
            _ => 0.0,
        };
        if ms > 0.0 {
            self.net_ms += ms;
            if let Some(t) = self.timing.as_mut() {
                t.add_network_ms(ms);
            }
        }
    }

    /// Enables the optional service-time model ([`crate::timing`]);
    /// each subsequent parallel I/O accumulates simulated elapsed
    /// time. Counted operations are unaffected.
    pub fn set_timing(&mut self, model: TimingModel) {
        self.timing = Some(TimingTracker::new(model, self.geom.disks()));
    }

    /// The timing tracker, if [`DiskSystem::set_timing`] was called.
    pub fn timing(&self) -> Option<&TimingTracker> {
        self.timing.as_ref()
    }

    /// Restricts the system to *striped* I/O only (the weaker model
    /// variant the paper contrasts with independent I/O in Section 1).
    /// Subsequent non-striped operations fail with
    /// [`PdmError::StripedOnly`].
    pub fn set_striped_only(&mut self, on: bool) {
        self.striped_only = on;
    }

    /// Installs (or removes) a fair-share governor: every counted
    /// parallel I/O first blocks in [`SchedHandle::acquire`] until the
    /// shared [`crate::sched::FairScheduler`] grants it, and the grant
    /// is charged to the handle's job. The multi-tenant service
    /// installs one per leased job system; solo systems leave it
    /// unset. Cancelling the job makes the next acquisition fail with
    /// [`PdmError::Cancelled`], before the operation is serviced or
    /// charged.
    pub fn set_governor(&mut self, governor: Option<SchedHandle>) {
        self.governor = governor;
    }

    /// The installed fair-share governor, if any.
    pub fn governor(&self) -> Option<&SchedHandle> {
        self.governor.as_ref()
    }

    /// Installs a recovery policy: retryable failures
    /// ([`PdmError::is_retryable`]) are re-attempted with exponential
    /// backoff within `policy.max_attempts`, stuck completions are
    /// timed out per `policy.op_timeout_ms`, and dead transport links
    /// may be revived ([`Transport::respawn`]) when `policy.respawn`.
    /// Recovered operations are **charged once** — a recovered run's
    /// [`IoStats`] equal a clean run's. The default policy is
    /// fail-fast (PR 6/7 behaviour, byte-for-byte).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        self.retry = policy;
    }

    /// The installed recovery policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The cumulative recovery ledger: attempts, retries, timeouts,
    /// backoff charged, and worker respawns. All-zero on a clean run.
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    /// Charges straggler/backoff stall time into the simulated-time
    /// accumulator and (when enabled) the timing tracker's makespan.
    fn charge_stall_ms(&mut self, ms: f64) {
        if ms > 0.0 {
            self.net_ms += ms;
            if let Some(t) = self.timing.as_mut() {
                t.add_network_ms(ms);
            }
        }
    }

    /// Books one admission-level recovery attempt if the policy allows
    /// a retry: counts it, sleeps and charges its backoff, and reports
    /// whether the failure was absorbed. Injected transient faults and
    /// oversized delays are one-shot per operation
    /// ([`crate::fault::FaultPlan`]), so a single retry resolves them.
    fn absorb_retryable_failure(&mut self) -> bool {
        if !self.retry.retries_enabled() {
            return false;
        }
        self.retry_stats.retries += 1;
        self.retry_stats.attempts += 1;
        let backoff = self.retry.backoff_ms(1);
        if backoff > 0 {
            self.retry_stats.backoff_ms += backoff;
            std::thread::sleep(Duration::from_millis(backoff));
            self.charge_stall_ms(backoff as f64);
        }
        true
    }

    /// Submits one command to the transport pool. Callers are the
    /// pooled/lockstep paths only.
    fn submit_cmd(&mut self, disk: usize, cmd: Cmd<R>) {
        match &mut self.service {
            Service::Pooled(pool) | Service::Lockstep(pool) => pool.submit(disk, cmd),
            _ => unreachable!("submit_cmd on a unit-backed service"),
        }
    }

    /// Severs the transport link to `disk`, if there is one.
    fn sever_disk(&mut self, disk: usize) {
        if let Service::Pooled(pool) | Service::Lockstep(pool) = &mut self.service {
            pool.inject_disconnect(disk);
        }
    }

    /// Attempts to revive the transport link to `disk`
    /// ([`Transport::respawn`]).
    fn respawn_disk(&mut self, disk: usize) -> Result<bool> {
        match &mut self.service {
            Service::Pooled(pool) | Service::Lockstep(pool) => pool.respawn(disk),
            _ => Err(PdmError::Io(format!(
                "disk {disk}: unit-backed service has no link to respawn"
            ))),
        }
    }

    /// Receives one completion from a transport drain, absorbing
    /// recoverable failures within policy before handing it back:
    ///
    /// * a `Disconnected` completion with respawn budget revives the
    ///   link ([`Transport::respawn`]) and resubmits the same command
    ///   (reads are idempotent; writes are replay-safe because the
    ///   per-disk link is FIFO and the payload rides in the returned
    ///   buffer);
    /// * a completion that outwaits `op_timeout_ms` severs the stuck
    ///   op's links so every in-flight buffer comes home as
    ///   `Disconnected` — which the respawn arm may then recover, and
    ///   which [`DiskSystem::finalize_err`] otherwise surfaces as
    ///   [`PdmError::Timeout`].
    ///
    /// Returns only completions the caller must resolve (data landed,
    /// buffer to recycle, or an unrecoverable error).
    fn recv_resolved(
        &mut self,
        rx: &Receiver<Completion<R>>,
        tx: &Sender<Completion<R>>,
        refs: &[BlockRef],
        attempts: &mut [u32],
        is_read: bool,
    ) -> Completion<R> {
        let mut severed = false;
        loop {
            let c = if let Some(budget) = self.retry.op_timeout_ms {
                loop {
                    match rx.recv_timeout(Duration::from_millis(budget)) {
                        Ok(c) => break c,
                        Err(RecvTimeoutError::Timeout) => {
                            if !severed {
                                severed = true;
                                self.retry_stats.timeouts += 1;
                                self.timeout_fired = Some(budget);
                                // Sever the whole op: stuck links
                                // answer their in-flight commands with
                                // `Disconnected`, bringing the buffers
                                // home.
                                for r in refs {
                                    self.sever_disk(r.disk);
                                }
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            panic!("disk service thread hung up")
                        }
                    }
                }
            } else {
                rx.recv().expect("disk service thread hung up")
            };
            let recoverable = matches!(c.result, Err(PdmError::Disconnected { .. }))
                && self.retry.respawn
                && attempts[c.idx] + 1 < self.retry.max_attempts;
            if recoverable {
                if let Ok(revived) = self.respawn_disk(c.disk) {
                    attempts[c.idx] += 1;
                    self.retry_stats.retries += 1;
                    self.retry_stats.attempts += 1;
                    self.retry_stats.respawns += revived as u64;
                    let backoff = self.retry.backoff_ms(attempts[c.idx]);
                    if backoff > 0 {
                        self.retry_stats.backoff_ms += backoff;
                        std::thread::sleep(Duration::from_millis(backoff));
                        self.charge_stall_ms(backoff as f64);
                    }
                    let Completion { idx, disk, buf, .. } = c;
                    let cmd = if is_read {
                        Cmd::Read {
                            slot: refs[idx].slot,
                            buf,
                            idx,
                            done: tx.clone(),
                        }
                    } else {
                        Cmd::Write {
                            slot: refs[idx].slot,
                            buf,
                            idx,
                            done: tx.clone(),
                        }
                    };
                    self.submit_cmd(disk, cmd);
                    continue;
                }
            }
            return c;
        }
    }

    /// Final error classification for one drained operation: when a
    /// per-op timeout fired and the survivors still failed with
    /// `Disconnected`, the caller-facing error is the timeout.
    fn finalize_err(&mut self, e: PdmError) -> PdmError {
        match (self.timeout_fired.take(), e) {
            (Some(ms), PdmError::Disconnected { disk }) => PdmError::Timeout {
                disk,
                op: self.op_counter.saturating_sub(1),
                attempt: 0,
                ms,
            },
            (_, e) => e,
        }
    }

    fn validate(&mut self, refs: impl Iterator<Item = BlockRef>) -> Result<()> {
        let slots_per_disk = self.slots_per_disk();
        let disks = self.geom.disks();
        self.seen_disks.fill(false);
        let seen = &mut self.seen_disks;
        for r in refs {
            if r.disk >= disks || r.slot >= slots_per_disk {
                return Err(PdmError::OutOfRange {
                    disk: r.disk,
                    slot: r.slot,
                    slots_per_disk,
                });
            }
            if seen[r.disk] {
                return Err(PdmError::DuplicateDisk { disk: r.disk });
            }
            seen[r.disk] = true;
        }
        Ok(())
    }

    fn is_striped(&self, refs: &[BlockRef]) -> bool {
        refs.len() == self.geom.disks() && refs.windows(2).all(|w| w[0].slot == w[1].slot)
    }

    /// Validation common to every counted operation: model checks,
    /// then the fair-share governor (which may block until the
    /// scheduler grants the I/O, or refuse it on cancellation), then
    /// the fault plan (which consumes one operation number).
    fn admit(&mut self, refs: &[BlockRef], is_read: bool) -> Result<()> {
        self.validate(refs.iter().copied())?;
        let striped = self.is_striped(refs);
        if self.striped_only && !striped {
            return Err(PdmError::StripedOnly);
        }
        if let Some(g) = &self.governor {
            g.acquire(refs, is_read, striped)?;
        }
        let op = self.op_counter;
        self.op_counter += 1;
        self.retry_stats.attempts += 1;
        if let Some(disk) = self.faults.check(op, refs.iter().map(|r| r.disk)) {
            // Permanent: fail fast on every attempt, never retried.
            return Err(PdmError::Fault { op, disk });
        }
        if let Some(disk) = self.faults.check_transient(op, refs.iter().map(|r| r.disk)) {
            // Transient (point or flaky window): the first attempt
            // fails; within policy the retry absorbs it and the
            // operation proceeds — charged once, like a clean run.
            self.retry_stats.transient_faults += 1;
            if !self.absorb_retryable_failure() {
                return Err(PdmError::TransientFault {
                    op,
                    disk,
                    attempt: 0,
                });
            }
        }
        if let Some((disk, ms)) = self.faults.delay(op, refs.iter().map(|r| r.disk)) {
            match self.retry.op_timeout_ms {
                // A straggler past the per-op budget is a timeout:
                // retryable (the congestion is transient), and the
                // retry proceeds without re-paying the delay.
                Some(budget) if ms > budget => {
                    self.retry_stats.timeouts += 1;
                    if !self.absorb_retryable_failure() {
                        return Err(PdmError::Timeout {
                            disk,
                            op,
                            attempt: 0,
                            ms,
                        });
                    }
                }
                // Within budget (or no budget): the op simply takes
                // `ms` longer — charged to the makespan, not an error.
                _ => self.charge_stall_ms(ms as f64),
            }
        }
        if let Some(disk) = self
            .faults
            .check_disconnect(op, refs.iter().map(|r| r.disk))
        {
            match &mut self.service {
                // Transport-backed services sever the link and let the
                // operation proceed: the disconnect surfaces through
                // the completion path mid-operation (the realistic
                // failure), with every buffer still recycled.
                Service::Pooled(pool) | Service::Lockstep(pool) => pool.inject_disconnect(disk),
                // Unit-backed services have no link to sever; fail the
                // operation up front.
                _ => return Err(PdmError::Disconnected { disk }),
            }
        }
        Ok(())
    }

    /// Charges one parallel I/O to the statistics and timing model.
    fn charge(&mut self, refs: &[BlockRef], is_read: bool) {
        if is_read {
            self.stats.parallel_reads += 1;
            self.stats.blocks_read += refs.len() as u64;
            if self.is_striped(refs) {
                self.stats.striped_reads += 1;
            }
        } else {
            self.stats.parallel_writes += 1;
            self.stats.blocks_written += refs.len() as u64;
            if self.is_striped(refs) {
                self.stats.striped_writes += 1;
            }
        }
        if let Some(t) = self.timing.as_mut() {
            t.record(refs.iter().map(|r| (r.disk, r.slot)));
        }
    }

    /// One parallel read into a contiguous buffer: fetches each
    /// requested block (at most one per disk) into
    /// `out[i*B .. (i+1)*B]` in request order, with no allocation on
    /// the serial path. Counts one parallel I/O (zero if `refs` is
    /// empty).
    pub fn read_blocks_into(&mut self, refs: &[BlockRef], out: &mut [R]) -> Result<()> {
        if refs.is_empty() {
            assert!(out.is_empty(), "output buffer for an empty request");
            return Ok(());
        }
        let block = self.geom.block();
        assert_eq!(
            out.len(),
            refs.len() * block,
            "read_blocks_into requires {} records of output space",
            refs.len() * block
        );
        self.admit(refs, true)?;
        match &mut self.service {
            Service::Serial(units) => {
                for (r, chunk) in refs.iter().zip(out.chunks_exact_mut(block)) {
                    units[r.disk]
                        .read(r.slot, chunk)
                        .map_err(|e| e.with_disk(r.disk))?;
                }
            }
            Service::SpawnPerOp(units) => {
                let reqs: Vec<(usize, usize)> = refs.iter().map(|r| (r.disk, r.slot)).collect();
                threaded_read(units, &reqs, out.chunks_exact_mut(block).collect())?;
            }
            Service::Pooled(_) | Service::Lockstep(_) => {
                let lockstep = matches!(self.service, Service::Lockstep(_));
                let (tx, rx) = channel();
                let mut first_err = None;
                let mut attempts = vec![0u32; refs.len()];
                let mut pending = 0;
                for (idx, r) in refs.iter().enumerate() {
                    let buf = self.pool.take();
                    self.submit_cmd(
                        r.disk,
                        Cmd::Read {
                            slot: r.slot,
                            buf,
                            idx,
                            done: tx.clone(),
                        },
                    );
                    pending += 1;
                    if lockstep {
                        // Serial discipline: one command in flight.
                        let c = self.recv_resolved(&rx, &tx, refs, &mut attempts, true);
                        absorb_read_completion(&mut self.pool, c, out, block, &mut first_err);
                        pending -= 1;
                    }
                }
                for _ in 0..pending {
                    let c = self.recv_resolved(&rx, &tx, refs, &mut attempts, true);
                    // Pool hygiene: the buffer comes back on every path.
                    absorb_read_completion(&mut self.pool, c, out, block, &mut first_err);
                }
                drop(tx);
                if let Some(e) = first_err {
                    let e = self.finalize_err(e);
                    self.absorb_network_time();
                    return Err(e);
                }
                self.timeout_fired = None;
            }
        }
        self.charge(refs, true);
        self.absorb_network_time();
        Ok(())
    }

    /// One parallel read: fetches each requested block (at most one per
    /// disk). Returns the blocks in request order. Counts one parallel
    /// I/O (zero if `refs` is empty). Allocating convenience wrapper
    /// over [`DiskSystem::read_blocks_into`].
    pub fn read_blocks(&mut self, refs: &[BlockRef]) -> Result<Vec<Vec<R>>> {
        if refs.is_empty() {
            return Ok(Vec::new());
        }
        let block = self.geom.block();
        let mut flat = vec![R::default(); refs.len() * block];
        self.read_blocks_into(refs, &mut flat)?;
        Ok(flat.chunks_exact(block).map(|c| c.to_vec()).collect())
    }

    /// One parallel write: stores each block (at most one per disk).
    /// Every block must be exactly `B` records. Counts one parallel I/O
    /// (zero if `writes` is empty).
    pub fn write_blocks(&mut self, writes: &[(BlockRef, &[R])]) -> Result<()> {
        if writes.is_empty() {
            return Ok(());
        }
        let block = self.geom.block();
        for (_, data) in writes {
            assert_eq!(
                data.len(),
                block,
                "write_blocks requires full {block}-record blocks"
            );
        }
        let refs: Vec<BlockRef> = writes.iter().map(|(r, _)| *r).collect();
        self.admit(&refs, false)?;
        match &mut self.service {
            Service::Serial(units) => {
                for (r, data) in writes {
                    units[r.disk]
                        .write(r.slot, data)
                        .map_err(|e| e.with_disk(r.disk))?;
                }
            }
            Service::SpawnPerOp(units) => {
                let reqs: Vec<(usize, usize, &[R])> = writes
                    .iter()
                    .map(|(r, data)| (r.disk, r.slot, *data))
                    .collect();
                threaded_write(units, &reqs)?;
            }
            Service::Pooled(_) | Service::Lockstep(_) => {
                let lockstep = matches!(self.service, Service::Lockstep(_));
                let (tx, rx) = channel();
                let mut first_err = None;
                let mut attempts = vec![0u32; refs.len()];
                let mut pending = 0;
                for (idx, (r, data)) in writes.iter().enumerate() {
                    let mut buf = self.pool.take();
                    buf.copy_from_slice(data);
                    self.submit_cmd(
                        r.disk,
                        Cmd::Write {
                            slot: r.slot,
                            buf,
                            idx,
                            done: tx.clone(),
                        },
                    );
                    pending += 1;
                    if lockstep {
                        let c = self.recv_resolved(&rx, &tx, &refs, &mut attempts, false);
                        absorb_write_completion(&mut self.pool, c, &mut first_err);
                        pending -= 1;
                    }
                }
                for _ in 0..pending {
                    let c = self.recv_resolved(&rx, &tx, &refs, &mut attempts, false);
                    absorb_write_completion(&mut self.pool, c, &mut first_err);
                }
                drop(tx);
                if let Some(e) = first_err {
                    let e = self.finalize_err(e);
                    self.absorb_network_time();
                    return Err(e);
                }
                self.timeout_fired = None;
            }
        }
        self.charge(&refs, false);
        self.absorb_network_time();
        Ok(())
    }

    /// One parallel read of a *single* block into `out` (`B` records)
    /// — the block-granular unit of the forecasting merge. Counts one
    /// parallel I/O (classified striped only when `D = 1`, where one
    /// block is a whole stripe).
    pub fn read_block_into(&mut self, r: BlockRef, out: &mut [R]) -> Result<()> {
        self.read_blocks_into(&[r], out)
    }

    // ------------------------------------------------------------------
    // Split-phase operations (the engine's overlap path).

    /// Begins one parallel read. The operation is validated, charged,
    /// and submitted immediately; in [`ServiceMode::Threaded`] the
    /// transfer proceeds on the service threads while the caller
    /// computes, in the synchronous modes it completes before this
    /// returns. Resolve with [`DiskSystem::finish_read`] (or
    /// [`DiskSystem::discard_read`] on an abort path).
    ///
    /// Unlike the all-at-once operations, a split-phase operation is
    /// charged at submission: a transfer that later fails has still
    /// been issued against the model.
    pub fn begin_read(&mut self, refs: &[BlockRef]) -> Result<ReadTicket<R>> {
        let block = self.geom.block();
        if refs.is_empty() {
            return Ok(ReadTicket {
                rx: None,
                tx: None,
                refs: Vec::new(),
                attempts: Vec::new(),
                pending: 0,
                sync: Vec::new(),
                count: 0,
            });
        }
        self.admit(refs, true)?;
        self.charge(refs, true);
        let count = refs.len();
        match &mut self.service {
            Service::Pooled(_) => {
                let (tx, rx) = channel();
                for (idx, r) in refs.iter().enumerate() {
                    let buf = self.pool.take();
                    self.submit_cmd(
                        r.disk,
                        Cmd::Read {
                            slot: r.slot,
                            buf,
                            idx,
                            done: tx.clone(),
                        },
                    );
                }
                self.absorb_network_time();
                Ok(ReadTicket {
                    rx: Some(rx),
                    tx: Some(tx),
                    refs: refs.to_vec(),
                    attempts: vec![0; refs.len()],
                    pending: refs.len(),
                    sync: Vec::new(),
                    count,
                })
            }
            Service::Lockstep(_) => {
                // Serial discipline over the transport: each block's
                // completion is collected before the next submission;
                // `finish_read` just copies out of the filled buffers.
                let (tx, rx) = channel();
                let mut attempts = vec![0u32; refs.len()];
                let mut sync = Vec::with_capacity(refs.len());
                let mut first_err = None;
                for (idx, r) in refs.iter().enumerate() {
                    let buf = self.pool.take();
                    self.submit_cmd(
                        r.disk,
                        Cmd::Read {
                            slot: r.slot,
                            buf,
                            idx,
                            done: tx.clone(),
                        },
                    );
                    let c = self.recv_resolved(&rx, &tx, refs, &mut attempts, true);
                    match c.result {
                        Ok(()) => sync.push(c.buf),
                        Err(e) => {
                            // Pool hygiene on the error path.
                            self.pool.put(c.buf);
                            if first_err.is_none() {
                                first_err = Some(e.with_disk(c.disk));
                            }
                        }
                    }
                }
                if let Some(e) = first_err {
                    for b in sync {
                        self.pool.put(b);
                    }
                    let e = self.finalize_err(e);
                    self.absorb_network_time();
                    return Err(e);
                }
                self.timeout_fired = None;
                self.absorb_network_time();
                Ok(ReadTicket {
                    rx: None,
                    tx: None,
                    refs: Vec::new(),
                    attempts: Vec::new(),
                    pending: 0,
                    sync,
                    count,
                })
            }
            Service::Serial(units) | Service::SpawnPerOp(units) => {
                // Synchronous fallback: transfer now into pooled
                // buffers; `finish_read` just copies out.
                let mut sync = Vec::with_capacity(refs.len());
                for r in refs {
                    let mut buf = self.pool.take();
                    match units[r.disk].read(r.slot, &mut buf) {
                        Ok(()) => sync.push(buf),
                        Err(e) => {
                            // Pool hygiene on the error path.
                            self.pool.put(buf);
                            for b in sync {
                                self.pool.put(b);
                            }
                            return Err(e.with_disk(r.disk));
                        }
                    }
                }
                debug_assert_eq!(block, sync[0].len());
                Ok(ReadTicket {
                    rx: None,
                    tx: None,
                    refs: Vec::new(),
                    attempts: Vec::new(),
                    pending: 0,
                    sync,
                    count,
                })
            }
        }
    }

    /// Begins a split-phase read of a single block (see
    /// [`DiskSystem::begin_read`]) — how the forecasting merge keeps
    /// the predicted run's next block in flight while the heap drains.
    pub fn begin_read_block(&mut self, r: BlockRef) -> Result<ReadTicket<R>> {
        self.begin_read(&[r])
    }

    /// Completes a split-phase read, copying block `i` of the request
    /// into `out[i*B .. (i+1)*B]` and recycling the transfer buffers.
    /// On error every buffer is still reclaimed.
    pub fn finish_read(&mut self, ticket: ReadTicket<R>, out: &mut [R]) -> Result<()> {
        let block = self.geom.block();
        assert_eq!(
            out.len(),
            ticket.count * block,
            "finish_read requires {} records of output space",
            ticket.count * block
        );
        let ReadTicket {
            rx,
            tx,
            refs,
            mut attempts,
            pending,
            sync,
            ..
        } = ticket;
        let mut first_err = None;
        if let Some(rx) = rx {
            let tx = tx.expect("pipelined ticket retains its sender");
            for _ in 0..pending {
                let c = self.recv_resolved(&rx, &tx, &refs, &mut attempts, true);
                match c.result {
                    Ok(()) => out[c.idx * block..(c.idx + 1) * block].copy_from_slice(&c.buf),
                    Err(e) if first_err.is_none() => {
                        first_err = Some(e.with_disk(c.disk));
                    }
                    Err(_) => {}
                }
                self.pool.put(c.buf);
            }
        } else {
            for (i, buf) in sync.into_iter().enumerate() {
                out[i * block..(i + 1) * block].copy_from_slice(&buf);
                self.pool.put(buf);
            }
        }
        match first_err {
            Some(e) => Err(self.finalize_err(e)),
            None => {
                self.timeout_fired = None;
                Ok(())
            }
        }
    }

    /// Abandons a split-phase read (abort path): waits out the
    /// transfers, discards the data, and reclaims every buffer.
    pub fn discard_read(&mut self, ticket: ReadTicket<R>) {
        // No recovery on the abort path: the data is unwanted, so a
        // failed completion just recycles its buffer.
        let ReadTicket {
            rx, pending, sync, ..
        } = ticket;
        if let Some(rx) = rx {
            for _ in 0..pending {
                let c = rx.recv().expect("disk service thread hung up");
                self.pool.put(c.buf);
            }
        } else {
            for buf in sync {
                self.pool.put(buf);
            }
        }
    }

    /// Begins one parallel write from a contiguous buffer: block `i` of
    /// the request is taken from `data[i*B .. (i+1)*B]`. The data is
    /// staged into pooled buffers, so `data` is reusable as soon as
    /// this returns. Charged at submission; resolve with
    /// [`DiskSystem::finish_write`].
    pub fn begin_write(&mut self, refs: &[BlockRef], data: &[R]) -> Result<WriteTicket<R>> {
        let block = self.geom.block();
        if refs.is_empty() {
            return Ok(WriteTicket {
                rx: None,
                tx: None,
                refs: Vec::new(),
                attempts: Vec::new(),
                pending: 0,
            });
        }
        assert_eq!(
            data.len(),
            refs.len() * block,
            "begin_write requires {} records of data",
            refs.len() * block
        );
        self.admit(refs, false)?;
        self.charge(refs, false);
        match &mut self.service {
            Service::Pooled(_) => {
                let (tx, rx) = channel();
                for (idx, r) in refs.iter().enumerate() {
                    let mut buf = self.pool.take();
                    buf.copy_from_slice(&data[idx * block..(idx + 1) * block]);
                    self.submit_cmd(
                        r.disk,
                        Cmd::Write {
                            slot: r.slot,
                            buf,
                            idx,
                            done: tx.clone(),
                        },
                    );
                }
                self.absorb_network_time();
                Ok(WriteTicket {
                    rx: Some(rx),
                    tx: Some(tx),
                    refs: refs.to_vec(),
                    attempts: vec![0; refs.len()],
                    pending: refs.len(),
                })
            }
            Service::Lockstep(_) => {
                let (tx, rx) = channel();
                let mut attempts = vec![0u32; refs.len()];
                let mut first_err = None;
                for (idx, r) in refs.iter().enumerate() {
                    let mut buf = self.pool.take();
                    buf.copy_from_slice(&data[idx * block..(idx + 1) * block]);
                    self.submit_cmd(
                        r.disk,
                        Cmd::Write {
                            slot: r.slot,
                            buf,
                            idx,
                            done: tx.clone(),
                        },
                    );
                    let c = self.recv_resolved(&rx, &tx, refs, &mut attempts, false);
                    absorb_write_completion(&mut self.pool, c, &mut first_err);
                }
                self.absorb_network_time();
                match first_err {
                    Some(e) => Err(self.finalize_err(e)),
                    None => {
                        self.timeout_fired = None;
                        Ok(WriteTicket {
                            rx: None,
                            tx: None,
                            refs: Vec::new(),
                            attempts: Vec::new(),
                            pending: 0,
                        })
                    }
                }
            }
            Service::Serial(units) => {
                for (i, r) in refs.iter().enumerate() {
                    units[r.disk]
                        .write(r.slot, &data[i * block..(i + 1) * block])
                        .map_err(|e| e.with_disk(r.disk))?;
                }
                Ok(WriteTicket {
                    rx: None,
                    tx: None,
                    refs: Vec::new(),
                    attempts: Vec::new(),
                    pending: 0,
                })
            }
            Service::SpawnPerOp(units) => {
                let reqs: Vec<(usize, usize, &[R])> = refs
                    .iter()
                    .enumerate()
                    .map(|(i, r)| (r.disk, r.slot, &data[i * block..(i + 1) * block]))
                    .collect();
                threaded_write(units, &reqs)?;
                Ok(WriteTicket {
                    rx: None,
                    tx: None,
                    refs: Vec::new(),
                    attempts: Vec::new(),
                    pending: 0,
                })
            }
        }
    }

    /// Completes a split-phase write, reclaiming the staging buffers
    /// and surfacing any transfer error.
    pub fn finish_write(&mut self, ticket: WriteTicket<R>) -> Result<()> {
        let WriteTicket {
            rx,
            tx,
            refs,
            mut attempts,
            pending,
        } = ticket;
        let mut first_err = None;
        if let Some(rx) = rx {
            let tx = tx.expect("pipelined ticket retains its sender");
            for _ in 0..pending {
                let c = self.recv_resolved(&rx, &tx, &refs, &mut attempts, false);
                if let Err(e) = c.result {
                    if first_err.is_none() {
                        first_err = Some(e.with_disk(c.disk));
                    }
                }
                self.pool.put(c.buf);
            }
        }
        match first_err {
            Some(e) => Err(self.finalize_err(e)),
            None => {
                self.timeout_fired = None;
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Striped convenience layers.

    /// The `D` references of the stripe at `slot` (test convenience;
    /// production paths reuse scratch buffers instead).
    #[cfg(test)]
    fn stripe_refs(&self, slot: usize) -> Vec<BlockRef> {
        (0..self.geom.disks())
            .map(|disk| BlockRef { disk, slot })
            .collect()
    }

    /// Striped read of the stripe at `slot` into `out` (`B·D` records
    /// in address order), with no allocation at all in steady state
    /// (the reference scratch is a reused field).
    pub fn read_stripe_into(&mut self, slot: usize, out: &mut [R]) -> Result<()> {
        let mut refs = std::mem::take(&mut self.stripe_scratch);
        refs.clear();
        refs.extend((0..self.geom.disks()).map(|disk| BlockRef { disk, slot }));
        let result = self.read_blocks_into(&refs, out);
        self.stripe_scratch = refs;
        result
    }

    /// Striped read of the stripe at `slot`: the `D` blocks at the same
    /// location on every disk, concatenated in disk order (which is
    /// record-address order within the stripe).
    pub fn read_stripe(&mut self, slot: usize) -> Result<Vec<R>> {
        let mut out = vec![R::default(); self.geom.block() * self.geom.disks()];
        self.read_stripe_into(slot, &mut out)?;
        Ok(out)
    }

    /// Striped write of `data` (`B·D` records in address order) to the
    /// stripe at `slot`.
    pub fn write_stripe(&mut self, slot: usize, data: &[R]) -> Result<()> {
        assert_eq!(
            data.len(),
            self.geom.block() * self.geom.disks(),
            "write_stripe requires a full stripe of {} records",
            self.geom.block() * self.geom.disks()
        );
        let writes: Vec<(BlockRef, &[R])> = data
            .chunks_exact(self.geom.block())
            .enumerate()
            .map(|(disk, chunk)| (BlockRef { disk, slot }, chunk))
            .collect();
        self.write_blocks(&writes)
    }

    /// Reads memoryload `ml` of a portion into `out` (`M` records in
    /// address order) with `M/BD` striped reads and no per-block
    /// allocation.
    pub fn read_memoryload_into(&mut self, portion: usize, ml: usize, out: &mut [R]) -> Result<()> {
        assert_eq!(
            out.len(),
            self.geom.memory(),
            "read_memoryload_into requires a full memoryload of {} records",
            self.geom.memory()
        );
        let spm = self.geom.stripes_per_memoryload();
        let stripe_len = self.geom.block() * self.geom.disks();
        let base = self.portion_base(portion) + ml * spm;
        for (t, chunk) in out.chunks_exact_mut(stripe_len).enumerate() {
            self.read_stripe_into(base + t, chunk)?;
        }
        debug_assert_eq!(spm * stripe_len, self.geom.memory());
        Ok(())
    }

    /// Reads memoryload `ml` of a portion: its `M/BD` consecutive
    /// stripes, returned as `M` records in address order. Costs `M/BD`
    /// parallel (striped) reads.
    pub fn read_memoryload(&mut self, portion: usize, ml: usize) -> Result<Vec<R>> {
        let mut out = vec![R::default(); self.geom.memory()];
        self.read_memoryload_into(portion, ml, &mut out)?;
        Ok(out)
    }

    /// Writes `M` records (address order) to memoryload `ml` of a
    /// portion with `M/BD` striped writes.
    pub fn write_memoryload(&mut self, portion: usize, ml: usize, data: &[R]) -> Result<()> {
        assert_eq!(
            data.len(),
            self.geom.memory(),
            "write_memoryload requires a full memoryload of {} records",
            self.geom.memory()
        );
        let spm = self.geom.stripes_per_memoryload();
        let stripe_len = self.geom.block() * self.geom.disks();
        let base = self.portion_base(portion) + ml * spm;
        for (t, chunk) in data.chunks_exact(stripe_len).enumerate() {
            self.write_stripe(base + t, chunk)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Uncounted direct access (setup / verification / observation).

    /// Reads one block directly, bypassing the model (no I/O charged).
    fn unit_read(&mut self, disk: usize, slot: usize, out: &mut [R]) -> Result<()> {
        match &mut self.service {
            Service::Serial(units) | Service::SpawnPerOp(units) => {
                units[disk].read(slot, out).map_err(|e| e.with_disk(disk))
            }
            Service::Pooled(pool) | Service::Lockstep(pool) => {
                let buf = self.pool.take();
                let (tx, rx) = channel();
                pool.submit(
                    disk,
                    Cmd::Read {
                        slot,
                        buf,
                        idx: 0,
                        done: tx,
                    },
                );
                let c = rx.recv().expect("disk service thread hung up");
                if c.result.is_ok() {
                    out.copy_from_slice(&c.buf);
                }
                self.pool.put(c.buf);
                self.absorb_network_time();
                c.result.map_err(|e| e.with_disk(disk))
            }
        }
    }

    /// Writes one block directly, bypassing the model (no I/O charged).
    fn unit_write(&mut self, disk: usize, slot: usize, data: &[R]) -> Result<()> {
        match &mut self.service {
            Service::Serial(units) | Service::SpawnPerOp(units) => {
                units[disk].write(slot, data).map_err(|e| e.with_disk(disk))
            }
            Service::Pooled(pool) | Service::Lockstep(pool) => {
                let mut buf = self.pool.take();
                buf.copy_from_slice(data);
                let (tx, rx) = channel();
                pool.submit(
                    disk,
                    Cmd::Write {
                        slot,
                        buf,
                        idx: 0,
                        done: tx,
                    },
                );
                let c = rx.recv().expect("disk service thread hung up");
                self.pool.put(c.buf);
                self.absorb_network_time();
                c.result.map_err(|e| e.with_disk(disk))
            }
        }
    }

    /// Translates a record address within a portion to its block
    /// location (Figure 1 layout).
    pub fn locate(&self, portion: usize, address: u64) -> BlockRef {
        let disk = self.layout.disk(address) as usize;
        let stripe = self.layout.stripe(address) as usize;
        BlockRef {
            disk,
            slot: self.portion_base(portion) + stripe,
        }
    }

    /// Fills a portion with `records` in address order **without
    /// counting I/Os** — initial data placement, not part of any
    /// algorithm's cost.
    pub fn load_records(&mut self, portion: usize, records: &[R]) {
        assert_eq!(
            records.len(),
            self.geom.records(),
            "load_records requires exactly N = {} records",
            self.geom.records()
        );
        let base = self.portion_base(portion);
        let stripe_len = self.geom.block() * self.geom.disks();
        let block = self.geom.block();
        for (t, stripe) in records.chunks_exact(stripe_len).enumerate() {
            for (disk, chunk) in stripe.chunks_exact(block).enumerate() {
                self.unit_write(disk, base + t, chunk)
                    .expect("load_records within capacity");
            }
        }
    }

    /// Reads a whole portion back in address order **without counting
    /// I/Os** — for verification at the end of an experiment.
    pub fn dump_records(&mut self, portion: usize) -> Vec<R> {
        let base = self.portion_base(portion);
        let mut out = Vec::with_capacity(self.geom.records());
        let mut buf = vec![R::default(); self.geom.block()];
        for t in 0..self.geom.stripes() {
            for disk in 0..self.geom.disks() {
                self.unit_read(disk, base + t, &mut buf)
                    .expect("dump_records within capacity");
                out.extend_from_slice(&buf);
            }
        }
        out
    }

    /// Reads one block **without counting I/Os** — used by the
    /// potential-function tracker to observe state between operations.
    pub fn peek_block(&mut self, r: BlockRef) -> Vec<R> {
        let mut buf = vec![R::default(); self.geom.block()];
        self.unit_read(r.disk, r.slot, &mut buf)
            .expect("peek_block within capacity");
        buf
    }
}

impl<R: Record + ByteRecord> DiskSystem<R> {
    /// A file-backed system: one preallocated file per disk in `dir`.
    pub fn new_file(geom: Geometry, portions: usize, dir: &Path) -> Result<Self> {
        assert!(portions >= 1, "need at least one portion");
        std::fs::create_dir_all(dir)
            .map_err(|e| PdmError::Io(format!("create_dir_all {}: {e}", dir.display())))?;
        let slots = portions * geom.stripes();
        let mut units: Vec<Box<dyn DiskUnit<R>>> = Vec::with_capacity(geom.disks());
        for d in 0..geom.disks() {
            let path = dir.join(format!("disk{d:03}.bin"));
            units.push(Box::new(FileDisk::create::<R>(&path, geom.block(), slots)?));
        }
        Ok(Self::from_units(geom, portions, units))
    }

    /// Backend-generic constructor: builds [`DiskSystem::new_mem`] or
    /// [`DiskSystem::new_file`] per the [`Backend`] value, so callers
    /// (CLI, benches, tests) can thread a backend choice through
    /// configuration instead of branching at every construction site.
    pub fn new_with_backend(geom: Geometry, portions: usize, backend: &Backend) -> Result<Self> {
        match backend {
            Backend::Mem => Ok(Self::new_mem(geom, portions)),
            Backend::File { dir } => Self::new_file(geom, portions, dir),
        }
    }

    /// Transport-generic constructor: the same system served in
    /// process ([`TransportConfig::InProc`]), by out-of-process
    /// `pdm-diskd` workers over Unix-domain sockets
    /// ([`TransportConfig::Uds`]), or over the deterministic simulated
    /// network ([`TransportConfig::SimNet`]). Placement and charged
    /// parallel-I/O counts are identical across all three; only
    /// message counters, network time, and the wall clock differ.
    ///
    /// Remote systems start in the lockstep (serial) discipline; use
    /// [`DiskSystem::set_service_mode`] /
    /// [`DiskSystem::set_threaded`] for pipelined submission.
    pub fn new_with_transport(
        geom: Geometry,
        portions: usize,
        backend: &Backend,
        transport: &TransportConfig,
    ) -> Result<Self> {
        let slots = portions * geom.stripes();
        match transport {
            TransportConfig::InProc => Self::new_with_backend(geom, portions, backend),
            TransportConfig::SimNet(model) => {
                let mut transports: Vec<Box<dyn Transport<R>>> = Vec::with_capacity(geom.disks());
                match backend {
                    Backend::Mem => {
                        for d in 0..geom.disks() {
                            transports.push(Box::new(SimNetTransport::<R>::new_mem(
                                d,
                                geom.block(),
                                slots,
                                *model,
                            )));
                        }
                    }
                    Backend::File { dir } => {
                        std::fs::create_dir_all(dir).map_err(|e| {
                            PdmError::Io(format!("create_dir_all {}: {e}", dir.display()))
                        })?;
                        for d in 0..geom.disks() {
                            transports.push(Box::new(SimNetTransport::<R>::new_file(
                                d,
                                &dir.join(format!("disk{d:03}.bin")),
                                geom.block(),
                                slots,
                                *model,
                            )?));
                        }
                    }
                }
                Ok(Self::from_remote(
                    geom,
                    portions,
                    DiskPool::from_transports(transports),
                ))
            }
            TransportConfig::Uds(cfg) => {
                let transports =
                    spawn_uds_workers::<R>(geom.disks(), geom.block(), slots, backend, cfg)?;
                let mut sys =
                    Self::from_remote(geom, portions, DiskPool::from_transports(transports));
                sys.set_retry_policy(cfg.retry);
                Ok(sys)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DiskSystem<u64> {
        // N=64, B=2, D=4, M=16: 8 stripes, 4 memoryloads.
        let g = Geometry::new(64, 2, 4, 16).unwrap();
        DiskSystem::new_mem(g, 2)
    }

    #[test]
    fn load_dump_round_trip() {
        let mut sys = small();
        let records: Vec<u64> = (0..64).collect();
        sys.load_records(0, &records);
        assert_eq!(sys.dump_records(0), records);
        assert_eq!(sys.stats().parallel_ios(), 0, "loading is free");
    }

    #[test]
    fn figure1_placement() {
        // Figure 1 semantics: record 21 (B=2, D=4 here) sits at
        // offset 1, disk 2, stripe 2: 21 = 1 + 2*2 + 2*8.
        let mut sys = small();
        let records: Vec<u64> = (0..64).collect();
        sys.load_records(0, &records);
        let loc = sys.locate(0, 21);
        assert_eq!(loc, BlockRef { disk: 2, slot: 2 });
        let blk = sys.peek_block(loc);
        assert_eq!(blk, vec![20, 21]);
    }

    #[test]
    fn striped_read_counts_one_io() {
        let mut sys = small();
        let records: Vec<u64> = (0..64).collect();
        sys.load_records(0, &records);
        let stripe = sys.read_stripe(0).unwrap();
        assert_eq!(stripe, (0..8).collect::<Vec<u64>>());
        let s = sys.stats();
        assert_eq!(s.parallel_reads, 1);
        assert_eq!(s.striped_reads, 1);
        assert_eq!(s.blocks_read, 4);
    }

    #[test]
    fn independent_read_classified() {
        let mut sys = small();
        let records: Vec<u64> = (0..64).collect();
        sys.load_records(0, &records);
        let blocks = sys
            .read_blocks(&[BlockRef { disk: 0, slot: 0 }, BlockRef { disk: 2, slot: 3 }])
            .unwrap();
        assert_eq!(blocks[0], vec![0, 1]);
        assert_eq!(blocks[1], vec![28, 29]); // stripe 3, disk 2 → 24 + 4..
        let s = sys.stats();
        assert_eq!(s.parallel_reads, 1);
        assert_eq!(s.striped_reads, 0);
        assert_eq!(s.independent_reads(), 1);
    }

    #[test]
    fn duplicate_disk_rejected() {
        let mut sys = small();
        let err = sys
            .read_blocks(&[BlockRef { disk: 1, slot: 0 }, BlockRef { disk: 1, slot: 1 }])
            .unwrap_err();
        assert!(matches!(err, PdmError::DuplicateDisk { disk: 1 }));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut sys = small();
        assert!(sys.read_blocks(&[BlockRef { disk: 9, slot: 0 }]).is_err());
        assert!(sys.read_blocks(&[BlockRef { disk: 0, slot: 99 }]).is_err());
    }

    #[test]
    fn write_blocks_round_trip() {
        let mut sys = small();
        let a = [100u64, 101];
        let b = [200u64, 201];
        sys.write_blocks(&[
            (BlockRef { disk: 0, slot: 8 }, &a),
            (BlockRef { disk: 3, slot: 9 }, &b),
        ])
        .unwrap();
        assert_eq!(sys.peek_block(BlockRef { disk: 0, slot: 8 }), a.to_vec());
        assert_eq!(sys.peek_block(BlockRef { disk: 3, slot: 9 }), b.to_vec());
        let s = sys.stats();
        assert_eq!(s.parallel_writes, 1);
        assert_eq!(s.blocks_written, 2);
        assert_eq!(s.independent_writes(), 1);
    }

    #[test]
    fn memoryload_round_trip_and_cost() {
        let mut sys = small();
        let records: Vec<u64> = (0..64).collect();
        sys.load_records(0, &records);
        // M = 16, BD = 8 → 2 stripes per memoryload, 4 memoryloads.
        let ml1 = sys.read_memoryload(0, 1).unwrap();
        assert_eq!(ml1, (16..32).collect::<Vec<u64>>());
        assert_eq!(sys.stats().parallel_reads, 2);
        assert_eq!(sys.stats().striped_reads, 2);

        sys.write_memoryload(1, 0, &ml1).unwrap();
        assert_eq!(sys.stats().parallel_writes, 2);
        let back = sys.read_memoryload(1, 0).unwrap();
        assert_eq!(back, ml1);
    }

    #[test]
    fn portions_are_disjoint() {
        let mut sys = small();
        let zeros = vec![0u64; 64];
        let ones = vec![1u64; 64];
        sys.load_records(0, &zeros);
        sys.load_records(1, &ones);
        assert_eq!(sys.dump_records(0), zeros);
        assert_eq!(sys.dump_records(1), ones);
    }

    #[test]
    fn striped_only_mode_rejects_independent_access() {
        let mut sys = small();
        sys.set_striped_only(true);
        // Striped operations still work.
        sys.read_stripe(0).unwrap();
        let stripe = vec![0u64; 8];
        sys.write_stripe(8, &stripe).unwrap();
        // Independent accesses are rejected without being charged.
        let before = sys.stats();
        let err = sys
            .read_blocks(&[BlockRef { disk: 0, slot: 0 }])
            .unwrap_err();
        assert!(matches!(err, PdmError::StripedOnly));
        let err = sys
            .write_blocks(&[(BlockRef { disk: 1, slot: 2 }, &[0u64, 0][..])])
            .unwrap_err();
        assert!(matches!(err, PdmError::StripedOnly));
        assert_eq!(sys.stats(), before, "rejected ops must not be charged");
    }

    #[test]
    fn fault_injection_fires() {
        let mut sys = small();
        sys.set_faults(FaultPlan::new().fail_at(1, 2));
        // op 0 succeeds
        sys.read_stripe(0).unwrap();
        // op 1 touches all disks; disk 2 faults.
        let err = sys.read_stripe(1).unwrap_err();
        assert!(matches!(err, PdmError::Fault { op: 1, disk: 2 }));
    }

    #[test]
    fn transient_faults_absorbed_with_exact_accounting() {
        // Admission-level transients (points and a flaky window) are
        // absorbed in every service mode; the recovered run's data and
        // charged I/Os equal a clean run's, and the ledger counts each
        // injected firing exactly once.
        let records: Vec<u64> = (0..64).collect();
        let mut clean = small();
        clean.load_records(0, &records);
        for s in 0..8 {
            clean.read_stripe(s).unwrap();
        }
        for mode in [ServiceMode::Serial, ServiceMode::Threaded] {
            let mut sys = small();
            sys.set_service_mode(mode);
            sys.set_retry_policy(RetryPolicy::fault_tolerant());
            sys.load_records(0, &records);
            // Three point transients plus a two-op window: 5 firings.
            sys.set_faults(
                FaultPlan::new()
                    .fail_transient_at(0, 1)
                    .fail_transient_at(3, 2)
                    .fail_transient_at(7, 0)
                    .fail_between(4, 6, 3),
            );
            for s in 0..8 {
                assert_eq!(
                    sys.read_stripe(s).unwrap(),
                    records[s * 8..(s + 1) * 8],
                    "mode {mode:?} stripe {s}"
                );
            }
            let rs = sys.retry_stats();
            assert_eq!(rs.transient_faults, 5, "mode {mode:?}");
            assert_eq!(rs.retries, 5, "retries == injected transients");
            assert_eq!(rs.timeouts, 0);
            assert_eq!(rs.respawns, 0);
            assert_eq!(rs.attempts, sys.stats().parallel_ios() + rs.retries);
            assert_eq!(sys.stats(), clean.stats(), "charged once, mode {mode:?}");
        }
    }

    #[test]
    fn transient_fault_fails_fast_without_retry_budget() {
        let mut sys = small();
        sys.set_faults(FaultPlan::new().fail_transient_at(1, 2));
        sys.read_stripe(0).unwrap();
        let err = sys.read_stripe(1).unwrap_err();
        assert_eq!(
            err,
            PdmError::TransientFault {
                op: 1,
                disk: 2,
                attempt: 0
            }
        );
        assert!(err.is_retryable());
        let rs = sys.retry_stats();
        assert_eq!(rs.transient_faults, 1);
        assert_eq!(rs.retries, 0, "default policy never retries");
    }

    #[test]
    fn stragglers_charge_the_makespan_within_budget() {
        let mut sys = small();
        let records: Vec<u64> = (0..64).collect();
        sys.load_records(0, &records);
        sys.set_faults(FaultPlan::new().delay_at(0, 1, 25).delay_at(0, 3, 40));
        let before = sys.network_ms();
        sys.read_stripe(0).unwrap();
        // The op completes when its slowest participant does.
        assert!((sys.network_ms() - before - 40.0).abs() < 1e-9);
        assert!(sys.retry_stats().is_clean(), "a straggler is not a failure");
    }

    #[test]
    fn oversized_straggler_times_out_and_retries() {
        let records: Vec<u64> = (0..64).collect();
        let mut sys = small();
        sys.set_retry_policy(RetryPolicy {
            max_attempts: 2,
            op_timeout_ms: Some(10),
            ..RetryPolicy::default()
        });
        sys.load_records(0, &records);
        sys.set_faults(FaultPlan::new().delay_at(1, 0, 50));
        sys.read_stripe(0).unwrap();
        assert_eq!(sys.read_stripe(1).unwrap(), records[8..16]);
        let rs = sys.retry_stats();
        assert_eq!(rs.timeouts, 1);
        assert_eq!(rs.retries, 1, "the retry outlives the congestion");

        // Without a retry budget the typed Timeout surfaces.
        let mut sys = small();
        sys.set_retry_policy(RetryPolicy {
            op_timeout_ms: Some(10),
            ..RetryPolicy::default()
        });
        sys.load_records(0, &records);
        sys.set_faults(FaultPlan::new().delay_at(0, 3, 50));
        let err = sys.read_stripe(0).unwrap_err();
        assert_eq!(
            err,
            PdmError::Timeout {
                disk: 3,
                op: 0,
                attempt: 0,
                ms: 50
            }
        );
    }

    #[test]
    fn disconnect_respawn_recovers_threaded_run() {
        let records: Vec<u64> = (0..64).collect();
        let mut clean = small();
        clean.set_service_mode(ServiceMode::Threaded);
        clean.load_records(0, &records);
        for s in 0..8 {
            clean.read_stripe(s).unwrap();
        }

        let mut sys = small();
        sys.set_service_mode(ServiceMode::Threaded);
        sys.set_retry_policy(RetryPolicy::fault_tolerant());
        sys.load_records(0, &records);
        sys.set_faults(FaultPlan::new().disconnect_at(2, 1));
        for s in 0..8 {
            assert_eq!(
                sys.read_stripe(s).unwrap(),
                records[s * 8..(s + 1) * 8],
                "stripe {s}"
            );
        }
        let rs = sys.retry_stats();
        assert_eq!(rs.respawns, 1, "one link revived");
        assert_eq!(rs.retries, 1, "one command resubmitted");
        assert_eq!(sys.stats(), clean.stats(), "recovered run charged once");
        assert_eq!(sys.buffer_pool_stats().outstanding, 0);
    }

    #[test]
    fn disconnect_without_respawn_still_fails_cleanly() {
        // The fail-fast contract of PR 7 is unchanged under the
        // default policy: the disconnect surfaces, buffers come home.
        let mut sys = small();
        sys.set_service_mode(ServiceMode::Threaded);
        sys.load_records(0, &(0..64).collect::<Vec<u64>>());
        sys.set_faults(FaultPlan::new().disconnect_at(1, 2));
        sys.read_stripe(0).unwrap();
        let err = sys.read_stripe(1).unwrap_err();
        assert!(matches!(err, PdmError::Disconnected { disk: 2 }), "{err}");
        assert_eq!(sys.retry_stats().respawns, 0);
        assert_eq!(sys.buffer_pool_stats().outstanding, 0);
    }

    #[test]
    fn simnet_run_recovers_disconnect_with_respawn() {
        let g = Geometry::new(64, 2, 4, 16).unwrap();
        let mut sys: DiskSystem<u64> = DiskSystem::new_with_transport(
            g,
            2,
            &Backend::Mem,
            &TransportConfig::SimNet(Default::default()),
        )
        .unwrap();
        sys.set_threaded(true);
        sys.set_retry_policy(RetryPolicy::fault_tolerant());
        let records: Vec<u64> = (0..64).collect();
        sys.load_records(0, &records);
        sys.set_faults(FaultPlan::new().disconnect_at(3, 0).disconnect_at(5, 2));
        for s in 0..8 {
            assert_eq!(
                sys.read_stripe(s).unwrap(),
                records[s * 8..(s + 1) * 8],
                "stripe {s}"
            );
        }
        let rs = sys.retry_stats();
        assert_eq!(rs.respawns, 2);
        assert_eq!(rs.retries, 2);
        assert_eq!(sys.buffer_pool_stats().outstanding, 0);
    }

    #[test]
    fn threaded_matches_serial() {
        let g = Geometry::new(256, 4, 8, 64).unwrap();
        let records: Vec<u64> = (0..256).collect();
        let mut serial = DiskSystem::<u64>::new_mem(g, 1);
        serial.load_records(0, &records);
        for mode in [ServiceMode::SpawnPerOp, ServiceMode::Threaded] {
            let mut threaded = DiskSystem::<u64>::new_mem(g, 1);
            threaded.set_service_mode(mode);
            assert_eq!(threaded.service_mode(), mode);
            threaded.load_records(0, &records);
            serial.reset_stats();
            for slot in 0..g.stripes() {
                assert_eq!(
                    serial.read_stripe(slot).unwrap(),
                    threaded.read_stripe(slot).unwrap()
                );
            }
            assert_eq!(serial.stats(), threaded.stats());
        }
    }

    #[test]
    fn service_mode_switch_preserves_data() {
        let mut sys = small();
        let records: Vec<u64> = (0..64).map(|i| i * 7).collect();
        sys.load_records(0, &records);
        sys.set_service_mode(ServiceMode::Threaded);
        assert_eq!(sys.dump_records(0), records);
        sys.set_service_mode(ServiceMode::SpawnPerOp);
        assert_eq!(sys.dump_records(0), records);
        sys.set_service_mode(ServiceMode::Serial);
        assert_eq!(sys.dump_records(0), records);
    }

    #[test]
    fn empty_requests_are_free() {
        let mut sys = small();
        assert!(sys.read_blocks(&[]).unwrap().is_empty());
        sys.write_blocks(&[]).unwrap();
        let t = sys.begin_read(&[]).unwrap();
        sys.finish_read(t, &mut []).unwrap();
        let t = sys.begin_write(&[], &[]).unwrap();
        sys.finish_write(t).unwrap();
        assert_eq!(sys.stats().parallel_ios(), 0);
    }

    #[test]
    fn split_phase_round_trip_all_modes() {
        for mode in [
            ServiceMode::Serial,
            ServiceMode::SpawnPerOp,
            ServiceMode::Threaded,
        ] {
            let mut sys = small();
            sys.set_service_mode(mode);
            let records: Vec<u64> = (0..64).collect();
            sys.load_records(0, &records);
            // Overlapped read of stripes 0 and 1.
            let t0 = sys.begin_read(&sys.stripe_refs(0)).unwrap();
            let t1 = sys.begin_read(&sys.stripe_refs(1)).unwrap();
            let mut s0 = vec![0u64; 8];
            let mut s1 = vec![0u64; 8];
            sys.finish_read(t0, &mut s0).unwrap();
            sys.finish_read(t1, &mut s1).unwrap();
            assert_eq!(s0, (0..8).collect::<Vec<u64>>());
            assert_eq!(s1, (8..16).collect::<Vec<u64>>());
            // Split-phase write to portion 1, then verify.
            let refs = sys.stripe_refs(sys.portion_base(1));
            let w = sys.begin_write(&refs, &s1).unwrap();
            sys.finish_write(w).unwrap();
            assert_eq!(
                sys.peek_block(BlockRef {
                    disk: 0,
                    slot: sys.portion_base(1)
                }),
                vec![8, 9]
            );
            let s = sys.stats();
            assert_eq!(s.parallel_reads, 2);
            assert_eq!(s.striped_reads, 2);
            assert_eq!(s.parallel_writes, 1);
            // All pooled buffers returned.
            assert_eq!(sys.buffer_pool_stats().outstanding, 0, "mode {mode:?}");
        }
    }

    #[test]
    fn buffer_pool_recycles_on_fault_error_path() {
        // Regression test: a fault-injection error must not strand
        // pooled block buffers (the pool's `outstanding` count would
        // creep up and every later operation would allocate afresh).
        for mode in [ServiceMode::Serial, ServiceMode::Threaded] {
            let mut sys = small();
            sys.set_service_mode(mode);
            let records: Vec<u64> = (0..64).collect();
            sys.load_records(0, &records);
            // Warm the pool, then record its size.
            let mut buf = vec![0u64; 8];
            sys.read_stripe_into(0, &mut buf).unwrap();
            let t = sys.begin_read(&sys.stripe_refs(1)).unwrap();
            sys.finish_read(t, &mut buf).unwrap();
            let warm = sys.buffer_pool_stats();
            assert_eq!(warm.outstanding, 0);
            // Every striped op from now on faults on disk 2.
            let mut plan = FaultPlan::new();
            for op in 2..32 {
                plan = plan.fail_at(op, 2);
            }
            sys.set_faults(plan);
            for _ in 0..10 {
                assert!(matches!(
                    sys.read_stripe_into(0, &mut buf),
                    Err(PdmError::Fault { .. })
                ));
                assert!(matches!(
                    sys.begin_read(&sys.stripe_refs(0)),
                    Err(PdmError::Fault { .. })
                ));
                assert!(matches!(
                    sys.begin_write(&sys.stripe_refs(8), &buf),
                    Err(PdmError::Fault { .. })
                ));
            }
            let after = sys.buffer_pool_stats();
            assert_eq!(after.outstanding, 0, "buffers leaked in mode {mode:?}");
            assert_eq!(
                after.allocated, warm.allocated,
                "faulted ops must not grow the pool (mode {mode:?})"
            );
        }
    }

    #[test]
    fn single_block_reads_all_modes() {
        // The block-granular merge path: one block per parallel I/O,
        // synchronous and split-phase, classified independent for
        // D > 1.
        for mode in [
            ServiceMode::Serial,
            ServiceMode::SpawnPerOp,
            ServiceMode::Threaded,
        ] {
            let mut sys = small();
            sys.set_service_mode(mode);
            let records: Vec<u64> = (0..64).collect();
            sys.load_records(0, &records);
            let mut buf = vec![0u64; 2];
            sys.read_block_into(BlockRef { disk: 2, slot: 3 }, &mut buf)
                .unwrap();
            assert_eq!(buf, vec![28, 29], "mode {mode:?}");
            let t = sys.begin_read_block(BlockRef { disk: 1, slot: 0 }).unwrap();
            sys.finish_read(t, &mut buf).unwrap();
            assert_eq!(buf, vec![2, 3], "mode {mode:?}");
            let s = sys.stats();
            assert_eq!(s.parallel_reads, 2);
            assert_eq!(s.striped_reads, 0, "one block of D=4 is not a stripe");
            assert_eq!(s.blocks_read, 2);
            assert_eq!(sys.buffer_pool_stats().outstanding, 0, "mode {mode:?}");
        }
    }

    #[test]
    fn discard_read_reclaims_buffers() {
        let mut sys = small();
        sys.set_service_mode(ServiceMode::Threaded);
        let records: Vec<u64> = (0..64).collect();
        sys.load_records(0, &records);
        let t = sys.begin_read(&sys.stripe_refs(0)).unwrap();
        sys.discard_read(t);
        assert_eq!(sys.buffer_pool_stats().outstanding, 0);
    }

    #[test]
    fn file_backend_round_trip() {
        let g = Geometry::new(64, 2, 4, 16).unwrap();
        let dir = crate::tempdir::TempDir::new("pdm-sys");
        let mut sys: DiskSystem<u64> = DiskSystem::new_file(g, 2, dir.path()).unwrap();
        let records: Vec<u64> = (0..64).map(|i| i * 3).collect();
        sys.load_records(0, &records);
        assert_eq!(sys.dump_records(0), records);
        let stripe = sys.read_stripe(1).unwrap();
        assert_eq!(stripe, (8..16).map(|i| i * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn backend_generic_constructor() {
        let g = Geometry::new(64, 2, 4, 16).unwrap();
        let records: Vec<u64> = (0..64).collect();
        let dir = crate::tempdir::TempDir::new("pdm-backend");
        for backend in [
            Backend::Mem,
            Backend::File {
                dir: dir.path().to_path_buf(),
            },
        ] {
            let mut sys: DiskSystem<u64> = DiskSystem::new_with_backend(g, 2, &backend).unwrap();
            sys.load_records(0, &records);
            assert_eq!(sys.dump_records(0), records, "backend {backend:?}");
        }
    }

    /// A SimNet system must be byte-identical to the in-process system
    /// on every access path — the simulated network serializes through
    /// the real wire protocol, which must be lossless.
    #[test]
    fn simnet_matches_inproc_on_all_paths() {
        use crate::transport::{SimNetModel, TransportConfig};
        let g = Geometry::new(64, 2, 4, 16).unwrap();
        let records: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(13)).collect();
        for mode in [ServiceMode::Serial, ServiceMode::Threaded] {
            let mut sim: DiskSystem<u64> = DiskSystem::new_with_transport(
                g,
                2,
                &Backend::Mem,
                &TransportConfig::SimNet(SimNetModel::lan()),
            )
            .unwrap();
            sim.set_service_mode(mode);
            assert_eq!(sim.service_mode(), mode);
            let mut local = small();
            local.set_service_mode(mode);
            sim.load_records(0, &records);
            local.load_records(0, &records);
            assert_eq!(sim.dump_records(0), records, "mode {mode:?}");
            // Striped, independent, and split-phase paths all agree.
            assert_eq!(
                sim.read_stripe(1).unwrap(),
                local.read_stripe(1).unwrap(),
                "mode {mode:?}"
            );
            let refs = [BlockRef { disk: 1, slot: 0 }, BlockRef { disk: 3, slot: 2 }];
            assert_eq!(
                sim.read_blocks(&refs).unwrap(),
                local.read_blocks(&refs).unwrap()
            );
            let t = sim.begin_read(&sim.stripe_refs(2)).unwrap();
            let mut got = vec![0u64; 8];
            sim.finish_read(t, &mut got).unwrap();
            assert_eq!(got, records[16..24], "mode {mode:?}");
            let w = sim
                .begin_write(&sim.stripe_refs(sim.portion_base(1)), &got)
                .unwrap();
            sim.finish_write(w).unwrap();
            assert_eq!(
                sim.peek_block(BlockRef {
                    disk: 0,
                    slot: sim.portion_base(1)
                }),
                records[16..18].to_vec()
            );
            // Mirror the split-phase ops on the local system so the
            // charged-cost comparison covers identical sequences.
            let t = local.begin_read(&local.stripe_refs(2)).unwrap();
            let mut local_got = vec![0u64; 8];
            local.finish_read(t, &mut local_got).unwrap();
            assert_eq!(local_got, got);
            let w = local
                .begin_write(&local.stripe_refs(local.portion_base(1)), &local_got)
                .unwrap();
            local.finish_write(w).unwrap();
            // Same charged cost, messages moved, network time accrued.
            assert_eq!(sim.stats(), local.stats(), "mode {mode:?}");
            let msgs = sim.message_stats();
            assert!(msgs.messages_sent > 0 && msgs.messages_sent == msgs.messages_received);
            assert!(sim.network_ms() > 0.0, "mode {mode:?}");
            assert_eq!(local.message_stats(), MsgStats::default());
            assert_eq!(local.network_ms(), 0.0);
            assert_eq!(sim.buffer_pool_stats().outstanding, 0, "mode {mode:?}");
        }
    }

    /// SimNet time flows into the timing tracker's makespan.
    #[test]
    fn simnet_network_time_reaches_the_tracker() {
        use crate::transport::{SimNetModel, TransportConfig};
        let g = Geometry::new(64, 2, 4, 16).unwrap();
        let mut sim: DiskSystem<u64> = DiskSystem::new_with_transport(
            g,
            1,
            &Backend::Mem,
            &TransportConfig::SimNet(SimNetModel::lan()),
        )
        .unwrap();
        sim.set_timing(TimingModel::ssd());
        let records: Vec<u64> = (0..64).collect();
        sim.load_records(0, &records);
        let net_before = sim.network_ms();
        sim.read_stripe(0).unwrap();
        let t = sim.timing().unwrap();
        let accrued = sim.network_ms() - net_before;
        assert!(accrued > 0.0);
        assert!(t.network_ms() >= accrued, "tracker saw the network charge");
        assert!(t.elapsed_ms() >= t.network_ms());
    }

    /// An injected transport disconnect surfaces mid-operation as
    /// [`PdmError::Disconnected`] naming the disk, recycles every
    /// pooled buffer, and leaves the link dead for later operations.
    #[test]
    fn transport_disconnect_surfaces_and_preserves_pool_hygiene() {
        use crate::transport::{SimNetModel, TransportConfig};
        let g = Geometry::new(64, 2, 4, 16).unwrap();
        for mode in [ServiceMode::Serial, ServiceMode::Threaded] {
            let mut sim: DiskSystem<u64> = DiskSystem::new_with_transport(
                g,
                2,
                &Backend::Mem,
                &TransportConfig::SimNet(SimNetModel::lan()),
            )
            .unwrap();
            sim.set_service_mode(mode);
            let records: Vec<u64> = (0..64).collect();
            sim.load_records(0, &records);
            // Warm the pool on both the all-at-once and split-phase
            // paths (split-phase holds a full stripe's buffers at
            // once), then snapshot.
            let mut buf = vec![0u64; 8];
            sim.read_stripe_into(0, &mut buf).unwrap();
            let t = sim.begin_read(&sim.stripe_refs(1)).unwrap();
            sim.finish_read(t, &mut buf).unwrap();
            let warm = sim.buffer_pool_stats();
            assert_eq!(warm.outstanding, 0);
            // Ops 2.. : disk 2's link drops during op 2.
            sim.set_faults(FaultPlan::new().disconnect_at(2, 2));
            let err = sim.read_stripe_into(0, &mut buf).unwrap_err();
            assert!(
                matches!(err, PdmError::Disconnected { disk: 2 }),
                "mode {mode:?}: {err}"
            );
            // The link stays dead: later ops touching disk 2 fail too.
            let err = sim.read_stripe_into(1, &mut buf).unwrap_err();
            assert!(matches!(err, PdmError::Disconnected { disk: 2 }));
            // Ops avoiding disk 2 still work.
            sim.read_blocks_into(&[BlockRef { disk: 0, slot: 0 }], &mut buf[..2])
                .unwrap();
            // Split-phase paths also fail cleanly: lockstep surfaces
            // the error at begin, pipelined at finish.
            match sim.begin_read(&sim.stripe_refs(0)) {
                Ok(t) => {
                    let mut out = vec![0u64; 8];
                    let err = sim.finish_read(t, &mut out).unwrap_err();
                    assert!(matches!(err, PdmError::Disconnected { disk: 2 }));
                }
                Err(e) => assert!(matches!(e, PdmError::Disconnected { disk: 2 })),
            }
            let after = sim.buffer_pool_stats();
            assert_eq!(after.outstanding, 0, "buffers leaked in mode {mode:?}");
            assert_eq!(
                after.allocated, warm.allocated,
                "disconnects must not grow the pool (mode {mode:?})"
            );
        }
    }

    /// In Threaded (pipelined) mode a split-phase disconnect error
    /// arrives at `finish_read`, not `begin_read`; buffers still come
    /// home.
    #[test]
    fn split_phase_disconnect_resolves_at_finish() {
        use crate::transport::{SimNetModel, TransportConfig};
        let g = Geometry::new(64, 2, 4, 16).unwrap();
        let mut sim: DiskSystem<u64> = DiskSystem::new_with_transport(
            g,
            1,
            &Backend::Mem,
            &TransportConfig::SimNet(SimNetModel::lan()),
        )
        .unwrap();
        sim.set_service_mode(ServiceMode::Threaded);
        let records: Vec<u64> = (0..64).collect();
        sim.load_records(0, &records);
        sim.set_faults(FaultPlan::new().disconnect_at(0, 1));
        let t = sim.begin_read(&sim.stripe_refs(0)).unwrap();
        let mut out = vec![0u64; 8];
        let err = sim.finish_read(t, &mut out).unwrap_err();
        assert!(matches!(err, PdmError::Disconnected { disk: 1 }), "{err}");
        assert_eq!(sim.buffer_pool_stats().outstanding, 0);
    }

    /// On unit-backed (non-transport) services a disconnect fault has
    /// no link to sever and fails the operation up front.
    #[test]
    fn disconnect_fault_on_local_units_fails_upfront() {
        let mut sys = small();
        sys.set_faults(FaultPlan::new().disconnect_at(0, 3));
        let err = sys.read_stripe(0).unwrap_err();
        assert!(matches!(err, PdmError::Disconnected { disk: 3 }));
        // Not charged, and later ops are unaffected (no persistent
        // link state on local units).
        assert_eq!(sys.stats().parallel_ios(), 0);
        sys.read_stripe(0).unwrap();
    }

    /// The full UDS client path — handshake, socket framing, the
    /// reader-thread pipeline — against workers served on plain
    /// threads (the identical serve loop `pdm-diskd` runs), so the
    /// socket transport is provable without spawning processes.
    #[test]
    fn uds_transport_against_in_thread_workers() {
        use crate::proto::Worker;
        use crate::transport::{serve_stream, UdsTransport};
        use std::os::unix::net::UnixListener;
        let g = Geometry::new(64, 2, 4, 16).unwrap();
        let dir = crate::tempdir::TempDir::new("pdm-uds-sys");
        let slots = 2 * g.stripes();
        let mut handles = Vec::new();
        let mut transports: Vec<Box<dyn Transport<u64>>> = Vec::new();
        for d in 0..g.disks() {
            let path = dir.path().join(format!("disk{d}.sock"));
            let listener = UnixListener::bind(&path).unwrap();
            let block_bytes = g.block() * 8;
            handles.push(std::thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                let mut w = Worker::new_mem(block_bytes, slots);
                serve_stream(stream, &mut w).unwrap();
            }));
            transports.push(Box::new(
                UdsTransport::<u64>::connect(d, &path, g.block(), slots, None, None).unwrap(),
            ));
        }
        let mut sys = DiskSystem::from_remote(g, 2, DiskPool::from_transports(transports));
        let records: Vec<u64> = (0..64).map(|i| i * 5).collect();
        sys.load_records(0, &records);
        assert_eq!(sys.dump_records(0), records);
        // Pipelined split-phase over the sockets.
        sys.set_threaded(true);
        let t0 = sys.begin_read(&sys.stripe_refs(0)).unwrap();
        let t1 = sys.begin_read(&sys.stripe_refs(1)).unwrap();
        let mut s0 = vec![0u64; 8];
        let mut s1 = vec![0u64; 8];
        sys.finish_read(t0, &mut s0).unwrap();
        sys.finish_read(t1, &mut s1).unwrap();
        assert_eq!(s0, records[..8]);
        assert_eq!(s1, records[8..16]);
        let w = sys
            .begin_write(&sys.stripe_refs(sys.portion_base(1)), &s0)
            .unwrap();
        sys.finish_write(w).unwrap();
        assert_eq!(
            sys.peek_block(BlockRef {
                disk: 0,
                slot: sys.portion_base(1)
            }),
            records[..2].to_vec()
        );
        let msgs = sys.message_stats();
        assert!(msgs.messages_sent > 0);
        assert_eq!(
            msgs.messages_sent, msgs.messages_received,
            "every request answered"
        );
        assert_eq!(sys.buffer_pool_stats().outstanding, 0);
        // Dropping the system sends STOP; the serve loops exit cleanly.
        drop(sys);
        for h in handles {
            h.join().unwrap();
        }
    }

    /// The file backend must behave identically to MemDisk under every
    /// service mode — including the threaded split-phase path the
    /// engine's overlap uses, where the per-disk workers issue real
    /// positional reads/writes against the files.
    #[test]
    fn file_backend_split_phase_all_modes() {
        let g = Geometry::new(64, 2, 4, 16).unwrap();
        for mode in [
            ServiceMode::Serial,
            ServiceMode::SpawnPerOp,
            ServiceMode::Threaded,
        ] {
            let dir = crate::tempdir::TempDir::new("pdm-sys-split");
            let mut sys: DiskSystem<u64> = DiskSystem::new_file(g, 2, dir.path()).unwrap();
            sys.set_service_mode(mode);
            let records: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(11)).collect();
            sys.load_records(0, &records);
            // Overlapped reads of stripes 0 and 1, then a split-phase
            // write of stripe 1's data into portion 1.
            let t0 = sys.begin_read(&sys.stripe_refs(0)).unwrap();
            let t1 = sys.begin_read(&sys.stripe_refs(1)).unwrap();
            let mut s0 = vec![0u64; 8];
            let mut s1 = vec![0u64; 8];
            sys.finish_read(t0, &mut s0).unwrap();
            sys.finish_read(t1, &mut s1).unwrap();
            assert_eq!(s0, records[..8], "mode {mode:?}");
            assert_eq!(s1, records[8..16], "mode {mode:?}");
            let refs = sys.stripe_refs(sys.portion_base(1));
            let w = sys.begin_write(&refs, &s1).unwrap();
            sys.finish_write(w).unwrap();
            assert_eq!(
                sys.peek_block(BlockRef {
                    disk: 0,
                    slot: sys.portion_base(1)
                }),
                records[8..10].to_vec(),
                "mode {mode:?}"
            );
            assert_eq!(sys.buffer_pool_stats().outstanding, 0, "mode {mode:?}");
        }
    }
}
