//! The parallel disk system: `D` disks driven by parallel I/O
//! operations with exact accounting.
//!
//! A [`DiskSystem`] owns one [`DiskUnit`] per
//! disk and exposes the model's two access disciplines:
//!
//! * **striped** — [`DiskSystem::read_stripe`] / [`DiskSystem::write_stripe`]
//!   move the `D` blocks at the same location on every disk;
//! * **independent** — [`DiskSystem::read_blocks`] /
//!   [`DiskSystem::write_blocks`] move at most one block per disk at
//!   arbitrary locations.
//!
//! Either way one call is one parallel I/O (the paper's unit of cost)
//! and is tallied in [`IoStats`]. The system enforces the model: a
//! request that addresses the same disk twice in one operation is an
//! error, not a slower success.
//!
//! Disks are sized as `portions × N/BD` stripes. Algorithms that "map
//! records from one set of N/BD stripes to a different set" (Section 3)
//! use portion 0 as the source and portion 1 as the target, swapping
//! roles between passes.

use crate::backend::{DiskUnit, FileDisk, MemDisk};
use crate::config::Geometry;
use crate::error::{PdmError, Result};
use crate::fault::FaultPlan;
use crate::layout::Layout;
use crate::parallel::{threaded_read, threaded_write};
use crate::record::{ByteRecord, Record};
use crate::stats::IoStats;
use crate::timing::{TimingModel, TimingTracker};
use std::path::Path;

/// A reference to one block: disk number and block slot on that disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockRef {
    /// Disk number, `0 .. D`.
    pub disk: usize,
    /// Block slot on the disk (global across portions).
    pub slot: usize,
}

/// A simulated parallel disk system storing records of type `R`.
pub struct DiskSystem<R> {
    geom: Geometry,
    layout: Layout,
    units: Vec<Box<dyn DiskUnit<R>>>,
    portions: usize,
    stats: IoStats,
    faults: FaultPlan,
    op_counter: u64,
    threaded: bool,
    timing: Option<TimingTracker>,
    striped_only: bool,
}

impl<R: Record> DiskSystem<R> {
    /// A memory-backed system with `portions` address spaces of `N/BD`
    /// stripes each (use 2 for the source/target double-buffering of
    /// the one-pass algorithms).
    pub fn new_mem(geom: Geometry, portions: usize) -> Self {
        assert!(portions >= 1, "need at least one portion");
        let slots = portions * geom.stripes();
        let units = (0..geom.disks())
            .map(|_| Box::new(MemDisk::<R>::new(geom.block(), slots)) as Box<dyn DiskUnit<R>>)
            .collect();
        DiskSystem {
            geom,
            layout: Layout::new(&geom),
            units,
            portions,
            stats: IoStats::default(),
            faults: FaultPlan::new(),
            op_counter: 0,
            threaded: false,
            timing: None,
            striped_only: false,
        }
    }

    /// The geometry this system was built with.
    #[inline]
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// The address layout (Figure 2 field extractor).
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Number of block slots on each disk.
    #[inline]
    pub fn slots_per_disk(&self) -> usize {
        self.portions * self.geom.stripes()
    }

    /// Number of portions (independent N-record address spaces).
    #[inline]
    pub fn portions(&self) -> usize {
        self.portions
    }

    /// First stripe slot of a portion.
    #[inline]
    pub fn portion_base(&self, portion: usize) -> usize {
        assert!(portion < self.portions, "portion {portion} out of range");
        portion * self.geom.stripes()
    }

    /// Cumulative I/O statistics.
    #[inline]
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the I/O statistics (not the operation counter used by
    /// fault plans).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Installs a fault-injection plan.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Enables or disables threaded (one thread per disk) servicing of
    /// parallel I/Os.
    pub fn set_threaded(&mut self, on: bool) {
        self.threaded = on;
    }

    /// Enables the optional service-time model ([`crate::timing`]);
    /// each subsequent parallel I/O accumulates simulated elapsed
    /// time. Counted operations are unaffected.
    pub fn set_timing(&mut self, model: TimingModel) {
        self.timing = Some(TimingTracker::new(model, self.geom.disks()));
    }

    /// The timing tracker, if [`DiskSystem::set_timing`] was called.
    pub fn timing(&self) -> Option<&TimingTracker> {
        self.timing.as_ref()
    }

    /// Restricts the system to *striped* I/O only (the weaker model
    /// variant the paper contrasts with independent I/O in Section 1).
    /// Subsequent non-striped operations fail with
    /// [`PdmError::StripedOnly`].
    pub fn set_striped_only(&mut self, on: bool) {
        self.striped_only = on;
    }

    fn validate(&self, refs: impl Iterator<Item = BlockRef>) -> Result<()> {
        let mut seen = vec![false; self.geom.disks()];
        for r in refs {
            if r.disk >= self.geom.disks() {
                return Err(PdmError::OutOfRange {
                    disk: r.disk,
                    slot: r.slot,
                    slots_per_disk: self.slots_per_disk(),
                });
            }
            if r.slot >= self.slots_per_disk() {
                return Err(PdmError::OutOfRange {
                    disk: r.disk,
                    slot: r.slot,
                    slots_per_disk: self.slots_per_disk(),
                });
            }
            if seen[r.disk] {
                return Err(PdmError::DuplicateDisk { disk: r.disk });
            }
            seen[r.disk] = true;
        }
        Ok(())
    }

    fn is_striped(&self, refs: &[BlockRef]) -> bool {
        refs.len() == self.geom.disks() && refs.windows(2).all(|w| w[0].slot == w[1].slot)
    }

    fn check_faults(&mut self, refs: &[BlockRef]) -> Result<()> {
        let op = self.op_counter;
        self.op_counter += 1;
        if let Some(disk) = self.faults.check(op, refs.iter().map(|r| r.disk)) {
            return Err(PdmError::Fault { op, disk });
        }
        Ok(())
    }

    /// One parallel read: fetches each requested block (at most one per
    /// disk). Returns the blocks in request order. Counts one parallel
    /// I/O (zero if `refs` is empty).
    pub fn read_blocks(&mut self, refs: &[BlockRef]) -> Result<Vec<Vec<R>>> {
        if refs.is_empty() {
            return Ok(Vec::new());
        }
        self.validate(refs.iter().copied())?;
        if self.striped_only && !self.is_striped(refs) {
            return Err(PdmError::StripedOnly);
        }
        self.check_faults(refs)?;
        let block = self.geom.block();
        let mut outs: Vec<Vec<R>> = refs.iter().map(|_| vec![R::default(); block]).collect();
        if self.threaded && self.geom.disks() > 1 {
            let reqs: Vec<(usize, usize)> = refs.iter().map(|r| (r.disk, r.slot)).collect();
            threaded_read(&mut self.units, &reqs, &mut outs)?;
        } else {
            for (r, out) in refs.iter().zip(outs.iter_mut()) {
                self.units[r.disk].read(r.slot, out).map_err(|e| match e {
                    PdmError::OutOfRange {
                        slot,
                        slots_per_disk,
                        ..
                    } => PdmError::OutOfRange {
                        disk: r.disk,
                        slot,
                        slots_per_disk,
                    },
                    other => other,
                })?;
            }
        }
        self.stats.parallel_reads += 1;
        self.stats.blocks_read += refs.len() as u64;
        if self.is_striped(refs) {
            self.stats.striped_reads += 1;
        }
        if let Some(t) = self.timing.as_mut() {
            t.record(refs.iter().map(|r| (r.disk, r.slot)));
        }
        Ok(outs)
    }

    /// One parallel write: stores each block (at most one per disk).
    /// Every block must be exactly `B` records. Counts one parallel I/O
    /// (zero if `writes` is empty).
    pub fn write_blocks(&mut self, writes: &[(BlockRef, &[R])]) -> Result<()> {
        if writes.is_empty() {
            return Ok(());
        }
        for (_, data) in writes {
            assert_eq!(
                data.len(),
                self.geom.block(),
                "write_blocks requires full {}-record blocks",
                self.geom.block()
            );
        }
        let refs: Vec<BlockRef> = writes.iter().map(|(r, _)| *r).collect();
        self.validate(refs.iter().copied())?;
        if self.striped_only && !self.is_striped(&refs) {
            return Err(PdmError::StripedOnly);
        }
        self.check_faults(&refs)?;
        if self.threaded && self.geom.disks() > 1 {
            let reqs: Vec<(usize, usize, &[R])> = writes
                .iter()
                .map(|(r, data)| (r.disk, r.slot, *data))
                .collect();
            threaded_write(&mut self.units, &reqs)?;
        } else {
            for (r, data) in writes {
                self.units[r.disk].write(r.slot, data)?;
            }
        }
        self.stats.parallel_writes += 1;
        self.stats.blocks_written += writes.len() as u64;
        if self.is_striped(&refs) {
            self.stats.striped_writes += 1;
        }
        if let Some(t) = self.timing.as_mut() {
            t.record(refs.iter().map(|r| (r.disk, r.slot)));
        }
        Ok(())
    }

    /// Striped read of the stripe at `slot`: the `D` blocks at the same
    /// location on every disk, concatenated in disk order (which is
    /// record-address order within the stripe).
    pub fn read_stripe(&mut self, slot: usize) -> Result<Vec<R>> {
        let refs: Vec<BlockRef> = (0..self.geom.disks())
            .map(|disk| BlockRef { disk, slot })
            .collect();
        let blocks = self.read_blocks(&refs)?;
        let mut out = Vec::with_capacity(self.geom.block() * self.geom.disks());
        for b in blocks {
            out.extend_from_slice(&b);
        }
        Ok(out)
    }

    /// Striped write of `data` (`B·D` records in address order) to the
    /// stripe at `slot`.
    pub fn write_stripe(&mut self, slot: usize, data: &[R]) -> Result<()> {
        assert_eq!(
            data.len(),
            self.geom.block() * self.geom.disks(),
            "write_stripe requires a full stripe of {} records",
            self.geom.block() * self.geom.disks()
        );
        let writes: Vec<(BlockRef, &[R])> = data
            .chunks_exact(self.geom.block())
            .enumerate()
            .map(|(disk, chunk)| (BlockRef { disk, slot }, chunk))
            .collect();
        self.write_blocks(&writes)
    }

    /// Reads memoryload `ml` of a portion: its `M/BD` consecutive
    /// stripes, returned as `M` records in address order. Costs `M/BD`
    /// parallel (striped) reads.
    pub fn read_memoryload(&mut self, portion: usize, ml: usize) -> Result<Vec<R>> {
        let spm = self.geom.stripes_per_memoryload();
        let base = self.portion_base(portion) + ml * spm;
        let mut out = Vec::with_capacity(self.geom.memory());
        for t in 0..spm {
            out.extend(self.read_stripe(base + t)?);
        }
        Ok(out)
    }

    /// Writes `M` records (address order) to memoryload `ml` of a
    /// portion with `M/BD` striped writes.
    pub fn write_memoryload(&mut self, portion: usize, ml: usize, data: &[R]) -> Result<()> {
        assert_eq!(
            data.len(),
            self.geom.memory(),
            "write_memoryload requires a full memoryload of {} records",
            self.geom.memory()
        );
        let spm = self.geom.stripes_per_memoryload();
        let stripe_len = self.geom.block() * self.geom.disks();
        let base = self.portion_base(portion) + ml * spm;
        for (t, chunk) in data.chunks_exact(stripe_len).enumerate() {
            self.write_stripe(base + t, chunk)?;
        }
        Ok(())
    }

    /// Translates a record address within a portion to its block
    /// location (Figure 1 layout).
    pub fn locate(&self, portion: usize, address: u64) -> BlockRef {
        let disk = self.layout.disk(address) as usize;
        let stripe = self.layout.stripe(address) as usize;
        BlockRef {
            disk,
            slot: self.portion_base(portion) + stripe,
        }
    }

    /// Fills a portion with `records` in address order **without
    /// counting I/Os** — initial data placement, not part of any
    /// algorithm's cost.
    pub fn load_records(&mut self, portion: usize, records: &[R]) {
        assert_eq!(
            records.len(),
            self.geom.records(),
            "load_records requires exactly N = {} records",
            self.geom.records()
        );
        let base = self.portion_base(portion);
        let stripe_len = self.geom.block() * self.geom.disks();
        for (t, stripe) in records.chunks_exact(stripe_len).enumerate() {
            for (disk, chunk) in stripe.chunks_exact(self.geom.block()).enumerate() {
                self.units[disk]
                    .write(base + t, chunk)
                    .expect("load_records within capacity");
            }
        }
    }

    /// Reads a whole portion back in address order **without counting
    /// I/Os** — for verification at the end of an experiment.
    pub fn dump_records(&mut self, portion: usize) -> Vec<R> {
        let base = self.portion_base(portion);
        let mut out = Vec::with_capacity(self.geom.records());
        let mut buf = vec![R::default(); self.geom.block()];
        for t in 0..self.geom.stripes() {
            for disk in 0..self.geom.disks() {
                self.units[disk]
                    .read(base + t, &mut buf)
                    .expect("dump_records within capacity");
                out.extend_from_slice(&buf);
            }
        }
        out
    }

    /// Reads one block **without counting I/Os** — used by the
    /// potential-function tracker to observe state between operations.
    pub fn peek_block(&mut self, r: BlockRef) -> Vec<R> {
        let mut buf = vec![R::default(); self.geom.block()];
        self.units[r.disk]
            .read(r.slot, &mut buf)
            .expect("peek_block within capacity");
        buf
    }
}

impl<R: Record + ByteRecord> DiskSystem<R> {
    /// A file-backed system: one preallocated file per disk in `dir`.
    pub fn new_file(geom: Geometry, portions: usize, dir: &Path) -> Result<Self> {
        assert!(portions >= 1, "need at least one portion");
        std::fs::create_dir_all(dir)
            .map_err(|e| PdmError::Io(format!("create_dir_all {}: {e}", dir.display())))?;
        let slots = portions * geom.stripes();
        let mut units: Vec<Box<dyn DiskUnit<R>>> = Vec::with_capacity(geom.disks());
        for d in 0..geom.disks() {
            let path = dir.join(format!("disk{d:03}.bin"));
            units.push(Box::new(FileDisk::create::<R>(&path, geom.block(), slots)?));
        }
        Ok(DiskSystem {
            geom,
            layout: Layout::new(&geom),
            units,
            portions,
            stats: IoStats::default(),
            faults: FaultPlan::new(),
            op_counter: 0,
            threaded: false,
            timing: None,
            striped_only: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DiskSystem<u64> {
        // N=64, B=2, D=4, M=16: 8 stripes, 4 memoryloads.
        let g = Geometry::new(64, 2, 4, 16).unwrap();
        DiskSystem::new_mem(g, 2)
    }

    #[test]
    fn load_dump_round_trip() {
        let mut sys = small();
        let records: Vec<u64> = (0..64).collect();
        sys.load_records(0, &records);
        assert_eq!(sys.dump_records(0), records);
        assert_eq!(sys.stats().parallel_ios(), 0, "loading is free");
    }

    #[test]
    fn figure1_placement() {
        // Figure 1 semantics: record 21 (B=2, D=4 here) sits at
        // offset 1, disk 2, stripe 2: 21 = 1 + 2*2 + 2*8.
        let mut sys = small();
        let records: Vec<u64> = (0..64).collect();
        sys.load_records(0, &records);
        let loc = sys.locate(0, 21);
        assert_eq!(loc, BlockRef { disk: 2, slot: 2 });
        let blk = sys.peek_block(loc);
        assert_eq!(blk, vec![20, 21]);
    }

    #[test]
    fn striped_read_counts_one_io() {
        let mut sys = small();
        let records: Vec<u64> = (0..64).collect();
        sys.load_records(0, &records);
        let stripe = sys.read_stripe(0).unwrap();
        assert_eq!(stripe, (0..8).collect::<Vec<u64>>());
        let s = sys.stats();
        assert_eq!(s.parallel_reads, 1);
        assert_eq!(s.striped_reads, 1);
        assert_eq!(s.blocks_read, 4);
    }

    #[test]
    fn independent_read_classified() {
        let mut sys = small();
        let records: Vec<u64> = (0..64).collect();
        sys.load_records(0, &records);
        let blocks = sys
            .read_blocks(&[BlockRef { disk: 0, slot: 0 }, BlockRef { disk: 2, slot: 3 }])
            .unwrap();
        assert_eq!(blocks[0], vec![0, 1]);
        assert_eq!(blocks[1], vec![28, 29]); // stripe 3, disk 2 → 24 + 4..
        let s = sys.stats();
        assert_eq!(s.parallel_reads, 1);
        assert_eq!(s.striped_reads, 0);
        assert_eq!(s.independent_reads(), 1);
    }

    #[test]
    fn duplicate_disk_rejected() {
        let mut sys = small();
        let err = sys
            .read_blocks(&[BlockRef { disk: 1, slot: 0 }, BlockRef { disk: 1, slot: 1 }])
            .unwrap_err();
        assert!(matches!(err, PdmError::DuplicateDisk { disk: 1 }));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut sys = small();
        assert!(sys.read_blocks(&[BlockRef { disk: 9, slot: 0 }]).is_err());
        assert!(sys.read_blocks(&[BlockRef { disk: 0, slot: 99 }]).is_err());
    }

    #[test]
    fn write_blocks_round_trip() {
        let mut sys = small();
        let a = [100u64, 101];
        let b = [200u64, 201];
        sys.write_blocks(&[
            (BlockRef { disk: 0, slot: 8 }, &a),
            (BlockRef { disk: 3, slot: 9 }, &b),
        ])
        .unwrap();
        assert_eq!(sys.peek_block(BlockRef { disk: 0, slot: 8 }), a.to_vec());
        assert_eq!(sys.peek_block(BlockRef { disk: 3, slot: 9 }), b.to_vec());
        let s = sys.stats();
        assert_eq!(s.parallel_writes, 1);
        assert_eq!(s.blocks_written, 2);
        assert_eq!(s.independent_writes(), 1);
    }

    #[test]
    fn memoryload_round_trip_and_cost() {
        let mut sys = small();
        let records: Vec<u64> = (0..64).collect();
        sys.load_records(0, &records);
        // M = 16, BD = 8 → 2 stripes per memoryload, 4 memoryloads.
        let ml1 = sys.read_memoryload(0, 1).unwrap();
        assert_eq!(ml1, (16..32).collect::<Vec<u64>>());
        assert_eq!(sys.stats().parallel_reads, 2);
        assert_eq!(sys.stats().striped_reads, 2);

        sys.write_memoryload(1, 0, &ml1).unwrap();
        assert_eq!(sys.stats().parallel_writes, 2);
        let back = sys.read_memoryload(1, 0).unwrap();
        assert_eq!(back, ml1);
    }

    #[test]
    fn portions_are_disjoint() {
        let mut sys = small();
        let zeros = vec![0u64; 64];
        let ones = vec![1u64; 64];
        sys.load_records(0, &zeros);
        sys.load_records(1, &ones);
        assert_eq!(sys.dump_records(0), zeros);
        assert_eq!(sys.dump_records(1), ones);
    }

    #[test]
    fn striped_only_mode_rejects_independent_access() {
        let mut sys = small();
        sys.set_striped_only(true);
        // Striped operations still work.
        sys.read_stripe(0).unwrap();
        let stripe = vec![0u64; 8];
        sys.write_stripe(8, &stripe).unwrap();
        // Independent accesses are rejected without being charged.
        let before = sys.stats();
        let err = sys
            .read_blocks(&[BlockRef { disk: 0, slot: 0 }])
            .unwrap_err();
        assert!(matches!(err, PdmError::StripedOnly));
        let err = sys
            .write_blocks(&[(BlockRef { disk: 1, slot: 2 }, &[0u64, 0][..])])
            .unwrap_err();
        assert!(matches!(err, PdmError::StripedOnly));
        assert_eq!(sys.stats(), before, "rejected ops must not be charged");
    }

    #[test]
    fn fault_injection_fires() {
        let mut sys = small();
        sys.set_faults(FaultPlan::new().fail_at(1, 2));
        // op 0 succeeds
        sys.read_stripe(0).unwrap();
        // op 1 touches all disks; disk 2 faults.
        let err = sys.read_stripe(1).unwrap_err();
        assert!(matches!(err, PdmError::Fault { op: 1, disk: 2 }));
    }

    #[test]
    fn threaded_matches_serial() {
        let g = Geometry::new(256, 4, 8, 64).unwrap();
        let records: Vec<u64> = (0..256).collect();
        let mut serial = DiskSystem::<u64>::new_mem(g, 1);
        serial.load_records(0, &records);
        let mut threaded = DiskSystem::<u64>::new_mem(g, 1);
        threaded.set_threaded(true);
        threaded.load_records(0, &records);
        for slot in 0..g.stripes() {
            assert_eq!(
                serial.read_stripe(slot).unwrap(),
                threaded.read_stripe(slot).unwrap()
            );
        }
        assert_eq!(serial.stats(), threaded.stats());
    }

    #[test]
    fn empty_requests_are_free() {
        let mut sys = small();
        assert!(sys.read_blocks(&[]).unwrap().is_empty());
        sys.write_blocks(&[]).unwrap();
        assert_eq!(sys.stats().parallel_ios(), 0);
    }

    #[test]
    fn file_backend_round_trip() {
        let g = Geometry::new(64, 2, 4, 16).unwrap();
        let dir = std::env::temp_dir().join(format!("pdm-sys-{}", std::process::id()));
        let mut sys: DiskSystem<u64> = DiskSystem::new_file(g, 2, &dir).unwrap();
        let records: Vec<u64> = (0..64).map(|i| i * 3).collect();
        sys.load_records(0, &records);
        assert_eq!(sys.dump_records(0), records);
        let stripe = sys.read_stripe(1).unwrap();
        assert_eq!(stripe, (8..16).map(|i| i * 3).collect::<Vec<u64>>());
        std::fs::remove_dir_all(&dir).ok();
    }
}
