//! Out-of-process disk worker: serves one disk of a parallel disk
//! system over a Unix-domain socket, speaking the wire protocol of
//! `pdm::proto`. Spawned per disk by `pdm::transport::spawn_uds_workers`
//! (one worker process per disk, one client connection per worker).
//!
//! ```text
//! pdm-diskd --socket PATH --block-bytes N --slots N [--file PATH]
//! ```
//!
//! All logic lives in `pdm::transport::diskd_main` so it is shared with
//! the in-thread test servers and unit-testable.

fn main() {
    std::process::exit(pdm::transport::diskd_main(std::env::args().skip(1)));
}
