//! Umbrella crate for the BMMC parallel-disk reproduction workspace.
//!
//! Re-exports the four library crates so examples and integration tests can
//! use a single dependency:
//!
//! * [`gf2`] — GF(2) bit-vector / bit-matrix linear algebra.
//! * [`pdm`] — Vitter–Shriver parallel disk model simulator.
//! * [`bmmc`] — BMMC permutation classes, factoring, algorithms, detection.
//! * [`extsort`] — external merge sort and the general-permutation baseline.

pub use bmmc;
pub use extsort;
pub use gf2;
pub use pdm;
