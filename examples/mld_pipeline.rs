//! Fusing two reorderings into one pass with the Section 7 extension.
//!
//! A pipeline stores its working set in layout `Z` (an MLD permutation
//! of the canonical order, chosen by the previous stage) and the next
//! stage wants layout `Y` (another MLD permutation). The naive plan —
//! undo `Z`, then apply `Y` — costs two passes; the paper's conclusion
//! observes that `Y ∘ Z⁻¹` is a *one-pass* permutation, and
//! `bmmc::perform_mld_pair` executes it directly: independent reads
//! gather each intermediate memoryload, independent writes disperse it.
//!
//! ```text
//! cargo run --example mld_pipeline
//! ```

use bmmc::{catalog, perform_mld_pair, plan_passes};
use pdm::{DiskSystem, Geometry, TaggedRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let geom = Geometry::new(1 << 14, 1 << 3, 1 << 2, 1 << 9).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let z = catalog::random_mld(&mut rng, geom.n(), geom.b(), geom.m());
    let y = catalog::random_mld(&mut rng, geom.n(), geom.b(), geom.m());

    // The data currently sits in Z-layout: record with canonical index
    // k lives at address z.target(k).
    let mut records = vec![TaggedRecord::default(); geom.records()];
    for k in 0..geom.records() as u64 {
        records[z.target(k) as usize] = TaggedRecord::new(k);
    }
    let mut sys: DiskSystem<TaggedRecord> = DiskSystem::new_mem(geom, 2);
    sys.load_records(0, &records);

    // What the generic planner would do with the composed matrix:
    let composed = y.compose(&z.inverse());
    let generic = plan_passes(&composed, geom.b(), geom.m()).unwrap();
    println!(
        "generic planner: {} passes ({} parallel I/Os)",
        generic.len(),
        generic.len() * geom.ios_per_pass()
    );

    // The fused pair executor: one pass.
    let stats = perform_mld_pair(&mut sys, &y, &z, 0, 1).expect("pair execution failed");
    println!(
        "fused Y·Z⁻¹:     1 pass  ({} parallel I/Os: {} independent reads, {} independent writes)",
        stats.ios.parallel_ios(),
        stats.ios.independent_reads(),
        stats.ios.independent_writes()
    );

    // Verify: record k must now sit at y.target(k).
    let out = sys.dump_records(1);
    for (addr, rec) in out.iter().enumerate() {
        assert!(rec.intact());
        assert_eq!(
            y.target(rec.key),
            addr as u64,
            "record {} not in Y-layout",
            rec.key
        );
    }
    println!(
        "verified: all {} records moved from Z-layout to Y-layout in one pass \
         (saved {} parallel I/Os)",
        out.len(),
        (generic.len() - 1) * geom.ios_per_pass()
    );
}
