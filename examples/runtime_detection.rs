//! Run-time BMMC detection on mixed workloads (Section 6).
//!
//! A storage library receives permutation requests as raw vectors of
//! target addresses. Detection decides, in at most
//! `N/BD + ⌈(lg(N/B)+1)/D⌉` parallel reads, whether the vector is
//! BMMC — dispatching to the optimal algorithm when it is, and to the
//! general sort when it is not.
//!
//! ```text
//! cargo run --example runtime_detection
//! ```

use bmmc::detect::{detect_bmmc, load_target_vector, Detection};
use bmmc::{bounds, catalog};
use pdm::Geometry;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let geom = Geometry::new(1 << 14, 1 << 3, 1 << 3, 1 << 9).unwrap();
    let n = geom.n();
    let mut rng = StdRng::seed_from_u64(7);

    let mut workloads: Vec<(&str, Vec<u64>)> = vec![
        ("bit reversal", catalog::bit_reversal(n).target_vector()),
        ("Gray code", catalog::gray_code(n).target_vector()),
        (
            "vector reversal",
            catalog::vector_reversal(n).target_vector(),
        ),
        (
            "random BMMC",
            catalog::random_bmmc(&mut rng, n).target_vector(),
        ),
        ("identity", (0..geom.records() as u64).collect()),
    ];
    // Two non-BMMC cases: a random shuffle, and a BMMC with one entry
    // corrupted.
    let mut shuffled: Vec<u64> = (0..geom.records() as u64).collect();
    shuffled.shuffle(&mut rng);
    workloads.push(("random shuffle", shuffled));
    let mut corrupted = catalog::bit_reversal(n).target_vector();
    corrupted.swap(3, 12345);
    workloads.push(("corrupted bit reversal", corrupted));

    println!(
        "detection bound: {} parallel reads (N/BD = {} + candidate {})\n",
        bounds::detection_reads(&geom),
        geom.stripes(),
        bounds::detection_reads(&geom) - geom.stripes() as u64
    );
    println!(
        "{:<24} {:>9} {:>7} {:>8}",
        "workload", "verdict", "reads", "class"
    );
    for (name, targets) in workloads {
        let mut sys = load_target_vector(geom, &targets);
        let det = detect_bmmc(&mut sys, 0).expect("detection I/O failed");
        match det {
            Detection::Bmmc { perm, stats } => {
                let flags = bmmc::classify(perm.matrix(), geom.b(), geom.m());
                let class = if flags.mrc {
                    "MRC"
                } else if flags.mld {
                    "MLD"
                } else if flags.bpc {
                    "BPC"
                } else {
                    "BMMC"
                };
                println!(
                    "{:<24} {:>9} {:>7} {:>8}",
                    name,
                    "BMMC",
                    stats.total(),
                    class
                );
            }
            Detection::NotBmmc { stats, .. } => {
                println!(
                    "{:<24} {:>9} {:>7} {:>8}",
                    name,
                    "not BMMC",
                    stats.total(),
                    "-"
                );
            }
        }
    }
}
