//! Gray-code reordering — the paper's example of an MRC permutation
//! hiding inside ordinary-looking data-parallel code (Section 6).
//!
//! A hypercube-style computation wants its records laid out so that
//! consecutive addresses differ in one bit: the binary-reflected Gray
//! code. Both the Gray code and its inverse have unit upper-triangular
//! characteristic matrices, so they are MRC and cost ONE pass — but a
//! programmer calling a generic permutation routine would pay the full
//! sorting bound. Run-time detection (Section 6) closes that gap: it
//! recognizes the BMMC structure from the raw target vector.
//!
//! ```text
//! cargo run --example gray_code_scan
//! ```

use bmmc::detect::{detect_bmmc, load_target_vector};
use bmmc::{algorithm::perform_bmmc, bounds, catalog};
use pdm::{DiskSystem, Geometry};

fn main() {
    let geom = Geometry::new(1 << 16, 1 << 3, 1 << 2, 1 << 9).unwrap();
    let n = geom.n();
    // To *read* records in Gray-code order with a sequential scan, the
    // record with source index g(k) must land at address k — i.e. we
    // perform the inverse Gray code.
    let gray_inv = catalog::gray_code_inverse(n);

    // The "application" hands us a plain vector of target addresses —
    // it has no idea the mapping is affine.
    let targets: Vec<u64> = (0..geom.records() as u64)
        .map(|x| gray_inv.target(x))
        .collect();

    // Run-time detection recovers (A, c) in N/BD + ⌈(lg(N/B)+1)/D⌉ reads.
    let mut tsys = load_target_vector(geom, &targets);
    let det = detect_bmmc(&mut tsys, 0).expect("detection I/O failed");
    let perm = det.bmmc().expect("Gray code is BMMC").clone();
    assert_eq!(perm, gray_inv, "detection recovered the wrong matrix");
    println!(
        "detected BMMC structure in {} parallel reads (bound: {})",
        det.stats().total(),
        bounds::detection_reads(&geom)
    );

    // It is MRC for this geometry → a single pass.
    assert!(bmmc::is_mrc(perm.matrix(), geom.m()));
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
    sys.load_records(0, &(0..geom.records() as u64).collect::<Vec<_>>());
    let report = perform_bmmc(&mut sys, &perm).expect("gray code failed");
    println!(
        "performed in {} pass(es), {} parallel I/Os (one-pass bound: {})",
        report.num_passes(),
        report.total.parallel_ios(),
        bounds::one_pass_ios(&geom)
    );
    assert_eq!(report.num_passes(), 1);

    // Verify consecutive outputs differ in exactly one bit of their
    // source index (the Gray property).
    let out = sys.dump_records(report.final_portion);
    for w in out.windows(2) {
        assert_eq!((w[0] ^ w[1]).count_ones(), 1, "not a Gray sequence");
    }
    println!("verified: consecutive records differ in exactly one source bit");
}
