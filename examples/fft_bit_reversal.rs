//! Bit-reversal reordering for an out-of-core FFT.
//!
//! The decimation-in-time FFT consumes its input in bit-reversed index
//! order. For data sets larger than memory, the reorder is a disk
//! permutation — and it is BPC (the paper's Section 1 list), so the
//! BMMC algorithm performs it in a constant number of passes where a
//! general permutation routine would pay the sorting bound.
//!
//! ```text
//! cargo run --example fft_bit_reversal
//! ```

use bmmc::{algorithm::perform_bmmc, bounds, catalog};
use extsort::general_permute;
use gf2::elim::rank;
use pdm::{DiskSystem, Geometry};

fn main() {
    // 2^18 complex samples (records hold the sample index here).
    let geom = Geometry::new(1 << 18, 1 << 4, 1 << 2, 1 << 10).unwrap();
    let n = geom.n();
    let perm = catalog::bit_reversal(n);

    // --- BMMC algorithm.
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
    let input: Vec<u64> = (0..geom.records() as u64).collect();
    sys.load_records(0, &input);
    let report = perform_bmmc(&mut sys, &perm).expect("bit reversal failed");
    let out = sys.dump_records(report.final_portion);
    for (addr, &sample) in out.iter().enumerate() {
        let expect = (addr as u64).reverse_bits() >> (64 - n);
        assert_eq!(sample, expect, "sample misplaced at {addr}");
    }
    println!(
        "BMMC algorithm:   {} passes, {:>7} parallel I/Os",
        report.num_passes(),
        report.total.parallel_ios()
    );

    // --- General-permutation baseline (external merge sort by target).
    let mut sys2: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
    sys2.load_records(0, &input);
    let sort_report = general_permute(&mut sys2, |&r| r, |x| x.reverse_bits() >> (64 - n))
        .expect("sort baseline failed");
    assert_eq!(
        sys2.dump_records(sort_report.final_portion),
        out,
        "baseline disagrees with BMMC algorithm"
    );
    println!(
        "sort baseline:    {} passes, {:>7} parallel I/Os",
        sort_report.passes,
        sort_report.total.parallel_ios()
    );

    let gamma_rank = rank(&perm.matrix().submatrix(geom.b()..n, 0..geom.b()));
    println!(
        "speedup {:.2}x   (Theorem 21 bound {} I/Os at rank γ = {gamma_rank}; \
         sorting bound {} I/Os)",
        sort_report.total.parallel_ios() as f64 / report.total.parallel_ios() as f64,
        bounds::theorem21_upper(&geom, gamma_rank),
        bounds::merge_sort_ios(&geom, bounds::MergeStrategy::SingleBuffered).unwrap()
    );
}
