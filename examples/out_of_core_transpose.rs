//! Out-of-core matrix transposition — the workload that motivated this
//! line of work (Vitter–Shriver gave transposition its own bound; the
//! BMMC algorithm subsumes it).
//!
//! An R×S matrix of records, stored row-major across the disk array,
//! is transposed to S×R without ever holding more than M records in
//! memory. Transposition is the BPC permutation that rotates the
//! address bits by lg R.
//!
//! ```text
//! cargo run --example out_of_core_transpose
//! ```

use bmmc::{algorithm::perform_bmmc, bounds, catalog};
use gf2::elim::rank;
use pdm::{DiskSystem, Geometry};

fn main() {
    // A 512 x 128 matrix: N = 2^16 records.
    let (lg_r, lg_s) = (9, 7);
    let geom = Geometry::new(1 << (lg_r + lg_s), 1 << 4, 1 << 3, 1 << 10).unwrap();
    let (rows, cols) = (1usize << lg_r, 1usize << lg_s);
    println!("transposing a {rows} x {cols} matrix, element (i, j) stored at j + {cols}·i");

    // Element (i, j) of the matrix is the record value i*10_000 + j,
    // stored row-major: address = j + cols*i.
    let mut sys: DiskSystem<u64> = DiskSystem::new_mem(geom, 2);
    let input: Vec<u64> = (0..geom.records() as u64)
        .map(|addr| {
            let (i, j) = (addr / cols as u64, addr % cols as u64);
            i * 10_000 + j
        })
        .collect();
    sys.load_records(0, &input);

    // Transposition = rotate the n address bits left by lg R
    // (x = j + S·i  ↦  y = i + R·j: the lg S column bits move up into
    // the high positions, the lg R row bits wrap down to the bottom).
    let perm = catalog::transpose(geom.n(), lg_r);
    let report = perform_bmmc(&mut sys, &perm).expect("transpose failed");

    // Verify: the transposed matrix is stored row-major as S x R, so
    // element (i, j) of the original now lives at address i + rows*j.
    let out = sys.dump_records(report.final_portion);
    for i in 0..rows as u64 {
        for j in 0..cols as u64 {
            let addr = (i + rows as u64 * j) as usize;
            assert_eq!(out[addr], i * 10_000 + j, "element ({i},{j}) misplaced");
        }
    }
    println!("verified all {} elements", out.len());

    let gamma_rank = rank(&perm.matrix().submatrix(geom.b()..geom.n(), 0..geom.b()));
    println!(
        "passes: {}   parallel I/Os: {}   (Theorem 21 bound: {},  Vitter–Shriver \
         transpose bound shape: (N/BD)(1 + lg min(B,R,S,N/B)/lg(M/B)) = {:.0})",
        report.num_passes(),
        report.total.parallel_ios(),
        bounds::theorem21_upper(&geom, gamma_rank),
        geom.stripes() as f64
            * (1.0
                + (geom.b().min(lg_r).min(lg_s).min(geom.n() - geom.b())) as f64
                    / geom.lg_mb() as f64)
            * 2.0
    );
}
