//! Quickstart: perform a BMMC permutation on a simulated parallel disk
//! system and compare the measured I/O count with the paper's bounds.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bmmc::{algorithm::perform_bmmc, bounds, catalog};
use gf2::elim::rank;
use pdm::{DiskSystem, Geometry, TaggedRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The Vitter–Shriver geometry: N = 2^16 records, blocks of B = 2^4,
    // D = 2^3 disks, memory for M = 2^10 records.
    let geom = Geometry::new(1 << 16, 1 << 4, 1 << 3, 1 << 10).unwrap();
    println!(
        "geometry: N = {}, B = {}, D = {}, M = {}  (n={}, b={}, d={}, m={})",
        geom.records(),
        geom.block(),
        geom.disks(),
        geom.memory(),
        geom.n(),
        geom.b(),
        geom.d(),
        geom.m()
    );

    // Load N tagged records in address order onto the disks.
    let mut sys: DiskSystem<TaggedRecord> = DiskSystem::new_mem(geom, 2);
    let input: Vec<TaggedRecord> = (0..geom.records() as u64).map(TaggedRecord::new).collect();
    sys.load_records(0, &input);

    // A random BMMC permutation: y = A·x ⊕ c over GF(2).
    let mut rng = StdRng::seed_from_u64(2024);
    let perm = catalog::random_bmmc(&mut rng, geom.n());
    let gamma_rank = rank(&perm.matrix().submatrix(geom.b()..geom.n(), 0..geom.b()));
    println!("permutation: random BMMC with rank γ = {gamma_rank}");

    // Perform it with the asymptotically optimal algorithm.
    let report = perform_bmmc(&mut sys, &perm).expect("algorithm failed");
    println!(
        "performed in {} passes, {} parallel I/Os ({})",
        report.num_passes(),
        report.total.parallel_ios(),
        report.total
    );

    // Check the result: the record with source address x must now sit
    // at address y = perm.target(x).
    let out = sys.dump_records(report.final_portion);
    for (y, rec) in out.iter().enumerate() {
        assert!(rec.intact(), "payload corrupted");
        assert_eq!(perm.target(rec.key), y as u64, "record misplaced");
    }
    println!(
        "verified: all {} records at their target addresses",
        out.len()
    );

    // Compare with the paper's bounds.
    println!(
        "Theorem 3 lower bound : {:>8.0} parallel I/Os",
        bounds::theorem3_lower(&geom, gamma_rank)
    );
    println!(
        "measured              : {:>8} parallel I/Os",
        report.total.parallel_ios()
    );
    println!(
        "Theorem 21 upper bound: {:>8} parallel I/Os",
        bounds::theorem21_upper(&geom, gamma_rank)
    );
    let (_, _, general) = bounds::general_permutation_bound(&geom);
    println!("general-permutation   : {general:>8} parallel I/Os (sorting baseline)");
}
