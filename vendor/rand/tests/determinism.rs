//! Self-tests for the vendored `rand`: seeded determinism is what the
//! whole workspace's reproducibility rests on.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};

#[test]
fn same_seed_same_stream() {
    let mut a = StdRng::seed_from_u64(42);
    let mut b = StdRng::seed_from_u64(42);
    for _ in 0..1000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

#[test]
fn different_seeds_differ() {
    let mut a = StdRng::seed_from_u64(1);
    let mut b = StdRng::seed_from_u64(2);
    let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
    let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
    assert_ne!(sa, sb);
}

#[test]
fn gen_range_is_in_bounds_and_hits_endpoints() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut seen = [false; 5];
    for _ in 0..1000 {
        let v = rng.gen_range(0usize..5);
        seen[v] = true;
    }
    assert!(seen.iter().all(|&s| s), "all of 0..5 reachable: {seen:?}");
    for _ in 0..100 {
        let v = rng.gen_range(3u64..=4);
        assert!(v == 3 || v == 4);
    }
}

#[test]
fn gen_bool_is_roughly_fair() {
    let mut rng = StdRng::seed_from_u64(9);
    let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
    assert!((4_000..6_000).contains(&heads), "heads = {heads}");
}

#[test]
fn shuffle_is_a_permutation() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut v: Vec<u32> = (0..256).collect();
    v.shuffle(&mut rng);
    assert_ne!(
        v,
        (0..256).collect::<Vec<_>>(),
        "256 elements left in place"
    );
    let mut sorted = v.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..256).collect::<Vec<_>>());
}

#[test]
fn choose_covers_the_slice() {
    let mut rng = StdRng::seed_from_u64(11);
    let items = [10u8, 20, 30];
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..200 {
        seen.insert(*items.choose(&mut rng).unwrap());
    }
    assert_eq!(seen.len(), 3);
    let empty: [u8; 0] = [];
    assert!(empty.choose(&mut rng).is_none());
}
