//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}`, and `seq::SliceRandom::{shuffle, choose}`.
//!
//! The build environment has no access to crates.io, so this crate is
//! vendored by path. The generator is xoshiro256** seeded via SplitMix64 —
//! deterministic across platforms, which the seeded tests rely on. It is
//! **not** cryptographically secure and makes no attempt to reproduce the
//! exact streams of the real `StdRng` (ChaCha12); all in-tree consumers
//! only need determinism for a fixed seed, not a specific stream.

pub mod rngs;
pub mod seq;

/// Core random-number source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the role the
/// real crate gives to `Standard: Distribution<T>`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable as `gen_range` endpoints.
///
/// Unsigned only: the `as u64` mapping below is order-preserving for
/// unsigned types but not for negative values, so signed impls are
/// deliberately omitted — `gen_range(-5..5)` fails at compile time
/// rather than panicking or sampling out of range at run time. (No
/// in-tree caller uses signed ranges.)
pub trait SampleUniform: Copy + PartialOrd {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` by rejection, so small spans are exact.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample from empty range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample from empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_below(rng, span + 1))
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators. Only `seed_from_u64` is used in-tree.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}
