//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! Only [`Mutex`] is needed (one call site in `pdm::parallel`). It wraps
//! `std::sync::Mutex` and mirrors the `parking_lot` API shape: `lock()`
//! returns the guard directly (no `Result`). A poisoned std mutex —
//! i.e. a panicked holder — just hands the data through, matching
//! `parking_lot`'s no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}
