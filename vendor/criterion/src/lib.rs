//! Offline vendored mini-criterion.
//!
//! Mirrors the `criterion` 0.5 API shape this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! `Throughput`, `BatchSize`, `BenchmarkId`, `black_box`) and produces a
//! simple wall-clock report: a fixed warm-up, then `sample_size` timed
//! samples, printing the median per-iteration time. No statistics
//! beyond that — the point is that `cargo bench` compiles and produces
//! usable numbers offline, not to replace criterion's analysis.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function_name, &self.parameter) {
            (Some(n), Some(p)) => write!(f, "{n}/{p}"),
            (Some(n), None) => write!(f, "{n}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "<unnamed>"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function_name: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function_name: Some(s),
            parameter: None,
        }
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one("", &id.into(), self.sample_size, None, &mut f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into(),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into(),
            self.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }

    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn time_once(f: &mut dyn FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_one(
    group: &str,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };

    // Calibrate the per-sample iteration count so one sample takes
    // roughly 10 ms (capped for very slow routines).
    let probe = time_once(f, 1).max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(10).as_nanos() / probe.as_nanos()).clamp(1, 10_000) as u64;

    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| time_once(f, iters).as_secs_f64() / iters as f64)
        .collect();
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(b) => format!(", {}/s", human_bytes(b as f64 / median)),
        Throughput::Elements(e) => format!(", {:.3e} elem/s", e as f64 / median),
    });
    println!(
        "{label:<48} time: [{} {} {}]{}",
        human_time(lo),
        human_time(median),
        human_time(hi),
        rate.unwrap_or_default()
    );
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn human_bytes(rate: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = rate;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}

/// `criterion_group!(name, fn1, fn2, …)` — a runner that calls each
/// registered bench function with a fresh default `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group1, group2, …)` — the `main` for a
/// `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}
