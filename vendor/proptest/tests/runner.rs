//! Self-tests for the mini-proptest runner: the danger with a vendored
//! stand-in is a runner that silently runs zero cases and fake-greens
//! every property in the workspace, so these pin the actual semantics.

use proptest::prelude::*;
use proptest::test_runner::{run_cases, ProptestConfig, TestCaseError};

#[test]
fn runs_exactly_the_configured_number_of_cases() {
    let mut ran = 0u32;
    run_cases("counter", &ProptestConfig::with_cases(37), |_rng| {
        ran += 1;
        Ok(())
    });
    assert_eq!(ran, 37);
}

#[test]
fn failure_panics_with_the_message() {
    let result = std::panic::catch_unwind(|| {
        run_cases("boom", &ProptestConfig::with_cases(10), |_rng| {
            Err(TestCaseError::fail("deliberate"))
        });
    });
    let panic = result.expect_err("failing property must panic");
    let text = panic
        .downcast_ref::<String>()
        .expect("panic payload is a String");
    assert!(text.contains("deliberate"), "panic message: {text}");
    assert!(text.contains("case #1"), "panic message: {text}");
}

#[test]
fn rejections_do_not_count_as_passes() {
    let mut attempts = 0u32;
    run_cases("rejecting", &ProptestConfig::with_cases(5), |_rng| {
        attempts += 1;
        if attempts.is_multiple_of(2) {
            Err(TestCaseError::reject("every other case"))
        } else {
            Ok(())
        }
    });
    // 5 passes interleaved with 4 rejections.
    assert_eq!(attempts, 9);
}

#[test]
fn exhausting_the_reject_budget_fails_loudly() {
    let result = std::panic::catch_unwind(|| {
        let cfg = ProptestConfig {
            max_global_rejects: 50,
            ..ProptestConfig::with_cases(5)
        };
        run_cases("always_rejects", &cfg, |_rng| {
            Err(TestCaseError::reject("impossible precondition"))
        });
    });
    let panic = result.expect_err("a vacuous property must not pass");
    let text = panic
        .downcast_ref::<String>()
        .expect("panic payload is a String");
    assert!(text.contains("too many prop_assume rejections"), "{text}");
    assert!(text.contains("0/5"), "{text}");
}

#[test]
fn sampling_is_deterministic_per_test_name() {
    let collect = |name: &str| {
        let mut vals = Vec::new();
        run_cases(name, &ProptestConfig::with_cases(8), |rng| {
            vals.push(any::<u64>().sample(rng));
            Ok(())
        });
        vals
    };
    assert_eq!(collect("alpha"), collect("alpha"));
    assert_ne!(collect("alpha"), collect("beta"));
}

#[test]
fn range_strategies_respect_bounds() {
    run_cases("ranges", &ProptestConfig::with_cases(256), |rng| {
        let a = (3usize..9).sample(rng);
        assert!((3..9).contains(&a));
        let b = (10u64..=10).sample(rng);
        assert_eq!(b, 10);
        let v = proptest::collection::vec(any::<bool>(), 2..5).sample(rng);
        assert!((2..5).contains(&v.len()));
        Ok(())
    });
}

// The macro surface itself, as the workspace's tests use it.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn macro_binds_multiple_strategies(x in 1usize..50, y in any::<u64>()) {
        prop_assert!((1..50).contains(&x));
        prop_assume!(x != 7); // rejects ~1/49 of cases; exercises the reject path
        prop_assert_eq!(y.wrapping_add(1).wrapping_sub(1), y);
        prop_assert_ne!(x, 7);
    }
}
