//! Offline vendored mini-proptest.
//!
//! Implements the subset of the `proptest` 1.x API this workspace's
//! property tests use:
//!
//! * `proptest! { #![proptest_config(..)] #[test] fn f(x in strategy, ..) { .. } }`
//! * strategies: integer ranges (`1usize..8`), `any::<T>()`,
//!   `proptest::collection::vec(elem, size_range)`, and `impl Strategy`
//!   combinators via [`strategy::Strategy`]
//! * assertions: `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   `prop_assume!`
//!
//! Unlike the real crate there is no shrinking: a failing case panics
//! with its case index and the per-test deterministic seed, which is
//! enough to reproduce (sampling is seeded from the test's name, so a
//! failure is stable across runs — rerun the test to replay it).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Expands each `fn name(pat in strategy, ...) { body }` item into a
/// zero-argument `#[test]` function that samples `cases` inputs
/// deterministically and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(
                    stringify!($name),
                    &config,
                    |rng| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(let $pat = $crate::strategy::Strategy::sample(&($strat), rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args..)` — returns
/// a `TestCaseError::Fail` from the enclosing case closure on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n  note: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Skip the current case (counted against a rejection budget, not as a
/// pass) when a sampled input doesn't meet the property's precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
