//! Case loop and config.

use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Give up (still passing) after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` rejected the sampled input: skip this case.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// FNV-1a, so each test gets a stable seed derived from its name.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive one property: sample and run until `config.cases` successes.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let seed = seed_for(name);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while passed < config.cases {
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                // Exhausting the reject budget must FAIL, not silently
                // pass: a prop_assume that rejects everything would
                // otherwise turn the property into a vacuous green test.
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest {name}: too many prop_assume rejections \
                         ({rejected}, last: {why}); only {passed}/{} cases passed",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name} failed at case #{attempt} (seed {seed:#x}):\n{msg}");
            }
        }
    }
}
