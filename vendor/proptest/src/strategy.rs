//! The [`Strategy`] trait: a sampleable description of a value space.
//!
//! The real proptest builds value *trees* to support shrinking; this
//! mini version only needs forward sampling, so a strategy is just a
//! deterministic function of an RNG.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Map sampled values through `f` (the only combinator used in-tree
    /// beyond bare ranges / `any` / `vec`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// `&S` is a strategy wherever `S` is, so strategies can be reused.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}
