//! `any::<T>()` — the canonical strategy for a type.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, Standard};

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<T: Standard> Arbitrary for T {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<T>()
    }
}

#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`: `any::<u64>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
