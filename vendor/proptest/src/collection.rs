//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `vec(elem, lo..hi)` — vectors of `elem`-samples with length in `lo..hi`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(!size.is_empty(), "vec strategy needs a nonempty size range");
    VecStrategy { element, size }
}
